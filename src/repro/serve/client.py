"""A blocking client for the ``repro serve`` line protocol.

Plain stdlib sockets — usable from scripts, tests, and other
processes without any async machinery.  One client holds one
connection bound to one tenant::

    with ServiceClient(host, port, tenant="acme") as db:
        db.store("R", relation)
        rows = db.query("project(join(R, S, #0 == #0), #0, #1)")["rows"]

Robustness.  The request/response stream is strictly one reply per
request, so a reply that goes missing mid-flight poisons the stream:
whatever arrives next would be read as the answer to the *next*
request.  The client therefore **tears the connection down** on any
timeout or socket error and raises
:class:`~repro.errors.ServiceRetryableError`; the built-in retry
policy then reconnects (re-sending ``hello`` for the bound tenant) and
retries with jittered exponential backoff.
:class:`~repro.errors.AdmissionError` — the server shedding load — is
honoured as retryable on the *same* connection.  Server-side errors
re-raise as the matching class from :mod:`repro.errors` (the
response's ``kind`` field), so ``PlanError``/``SchemaError``/... keep
their identity across the wire.
"""

from __future__ import annotations

import socket
from typing import Any, Optional

from repro.errors import (
    AdmissionError,
    ReproError,
    ServiceRetryableError,
    error_class,
)
from repro.faults.recovery import RetryPolicy, cancellable_sleep
from repro.relational.relation import Relation
from repro.serve.protocol import decode_line, encode_line, relation_to_wire

__all__ = ["ServiceClient"]


class ServiceClient:
    """One tenant's connection to a :class:`~repro.serve.server.ReproServer`.

    Raises the server-side error's matching :mod:`repro.errors` class
    when the server answers ``ok: false``.  ``retries`` bounds the
    automatic reconnect-and-retry attempts per request (0 disables
    them); ``retry_backoff`` seeds the jittered exponential backoff
    between attempts.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        timeout: Optional[float] = 60.0,
        retries: int = 2,
        retry_backoff: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.retry_policy = RetryPolicy(
            attempts=max(1, retries + 1),
            base_seconds=retry_backoff,
            cap_seconds=max(retry_backoff, retry_backoff * 8),
        )
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection --------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rb")
        try:
            self._request_once({"op": "hello", "tenant": self.tenant})
        except BaseException:
            self._teardown()
            raise
        return self

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            # Best-effort, single attempt: never retry our way out the
            # door.
            self._request_once({"op": "bye"})
        except (ReproError, OSError):
            pass
        self._teardown()

    def _teardown(self) -> None:
        """Drop the socket: the stream can no longer be trusted."""
        file, sock = self._file, self._sock
        self._file = None
        self._sock = None
        for resource in (file, sock):
            if resource is None:
                continue
            try:
                resource.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- verbs -------------------------------------------------------------

    def hello(self, tenant: str) -> dict[str, Any]:
        """Bind the connection to a tenant's catalog."""
        self.tenant = tenant
        return self._request({"op": "hello", "tenant": tenant})

    def ping(self) -> bool:
        return bool(self._request({"op": "ping"}).get("pong"))

    def health(self) -> dict[str, Any]:
        """The server's heartbeat: gate occupancy, deadline, fault
        ledger (None unless the server runs with ``--faults``)."""
        return self._request({"op": "health"})

    def store(
        self,
        name: str,
        relation: Relation,
        key: Optional[str] = None,
        replicate: bool = False,
        persist: bool = False,
    ) -> dict[str, Any]:
        """Put a base relation on this tenant's disk(s).

        ``key`` and ``replicate`` direct placement when the server runs
        sharded (``repro serve --shards N``); an unsharded server
        ignores them.  ``persist=True`` writes the relation through to
        the server's columnar store (``repro serve --store-dir DIR``),
        so it survives server restarts and is chunk-pruned at query
        time; a server without a persistence root refuses it.
        """
        payload = self._placed({
            "op": "store", "name": name,
            "relation": relation_to_wire(relation),
        }, key, replicate)
        if persist:
            payload["persist"] = True
        return self._request(payload)

    def preload(
        self,
        name: str,
        relation: Relation,
        key: Optional[str] = None,
        replicate: bool = False,
    ) -> dict[str, Any]:
        """Mark a relation memory-resident for this tenant's queries."""
        return self._request(self._placed({
            "op": "preload", "name": name,
            "relation": relation_to_wire(relation),
        }, key, replicate))

    @staticmethod
    def _placed(
        payload: dict[str, Any], key: Optional[str], replicate: bool
    ) -> dict[str, Any]:
        if key is not None:
            payload["key"] = key
        if replicate:
            payload["replicate"] = True
        return payload

    def query(
        self,
        expr: str,
        pipeline: bool = True,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> dict[str, Any]:
        """Run one algebra expression; returns the response payload.

        The payload carries ``relation`` (wire format: columns +
        decoded rows), ``rows``, and the simulated ``makespan_ms``.
        """
        request: dict[str, Any] = {
            "op": "query", "expr": expr,
            "pipeline": pipeline, "priority": priority,
        }
        if timeout is not None:
            request["timeout"] = timeout
        return self._request(request)

    def stats(self) -> dict[str, Any]:
        """The pool's serving snapshot (tenants, cache, admission gate)."""
        return self._request({"op": "stats"})["stats"]

    # -- plumbing ----------------------------------------------------------

    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request with the client's reconnect-and-retry policy.

        :class:`ServiceRetryableError` retries on a **fresh** connection
        (the failed one was torn down; :meth:`connect` re-binds the
        tenant); :class:`AdmissionError` — backpressure, a property of
        the instant — retries on the same connection.  Both back off
        with deterministic jitter.  Every other error propagates.
        """
        policy = self.retry_policy
        for attempt in range(1, policy.attempts + 1):
            try:
                if self._sock is None:
                    self.connect()
                return self._request_once(payload)
            except (ServiceRetryableError, AdmissionError) as exc:
                if attempt == policy.attempts:
                    raise
                delay = policy.delay(
                    attempt, f"{self.host}:{self.port}:{payload.get('op')}"
                )
                cancellable_sleep(delay, None)
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request / one reply on the current connection.

        Any timeout or socket failure mid-flight leaves a reply
        potentially in transit, so the connection is torn down before
        raising — reading that stale reply later as the answer to a
        *different* request would silently corrupt the session.
        """
        if self._sock is None:
            raise ServiceRetryableError("client is not connected")
        try:
            self._sock.sendall(encode_line(payload))
            line = self._file.readline()
        except socket.timeout:
            self._teardown()
            raise ServiceRetryableError(
                f"request {payload.get('op')!r} timed out after "
                f"{self.timeout:g}s; connection torn down (a late reply "
                f"can no longer be matched to its request)"
            ) from None
        except OSError as exc:
            self._teardown()
            raise ServiceRetryableError(
                f"connection to {self.host}:{self.port} failed: {exc}"
            ) from None
        if not line:
            self._teardown()
            raise ServiceRetryableError("server closed the connection")
        response = decode_line(line)
        if not response.get("ok"):
            message = response.get("error", "unknown server error")
            raise error_class(str(response.get("kind", "")))(message)
        return response

    def __repr__(self) -> str:
        state = "connected" if self._sock else "disconnected"
        return (
            f"ServiceClient({self.host}:{self.port}, "
            f"tenant={self.tenant!r}, {state})"
        )
