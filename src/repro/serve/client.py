"""A blocking client for the ``repro serve`` line protocol.

Plain stdlib sockets — usable from scripts, tests, and other
processes without any async machinery.  One client holds one
connection bound to one tenant::

    with ServiceClient(host, port, tenant="acme") as db:
        db.store("R", relation)
        rows = db.query("project(join(R, S, #0 == #0), #0, #1)")["rows"]
"""

from __future__ import annotations

import socket
from typing import Any, Optional

from repro.errors import AdmissionError, ReproError
from repro.relational.relation import Relation
from repro.serve.protocol import decode_line, encode_line, relation_to_wire

__all__ = ["ServiceClient"]


class ServiceClient:
    """One tenant's connection to a :class:`~repro.serve.server.ReproServer`.

    Raises :class:`~repro.errors.ReproError` (or the server-side error's
    matching class for admission refusals) when the server answers
    ``ok: false``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        timeout: Optional[float] = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection --------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rb")
        self.hello(self.tenant)
        return self

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._request({"op": "bye"})
        except (ReproError, OSError):
            pass
        try:
            self._file.close()
            self._sock.close()
        finally:
            self._sock = None
            self._file = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- verbs -------------------------------------------------------------

    def hello(self, tenant: str) -> dict[str, Any]:
        """Bind the connection to a tenant's catalog."""
        self.tenant = tenant
        return self._request({"op": "hello", "tenant": tenant})

    def ping(self) -> bool:
        return bool(self._request({"op": "ping"}).get("pong"))

    def store(
        self,
        name: str,
        relation: Relation,
        key: Optional[str] = None,
        replicate: bool = False,
    ) -> dict[str, Any]:
        """Put a base relation on this tenant's disk(s).

        ``key`` and ``replicate`` direct placement when the server runs
        sharded (``repro serve --shards N``); an unsharded server
        ignores them.
        """
        return self._request(self._placed({
            "op": "store", "name": name,
            "relation": relation_to_wire(relation),
        }, key, replicate))

    def preload(
        self,
        name: str,
        relation: Relation,
        key: Optional[str] = None,
        replicate: bool = False,
    ) -> dict[str, Any]:
        """Mark a relation memory-resident for this tenant's queries."""
        return self._request(self._placed({
            "op": "preload", "name": name,
            "relation": relation_to_wire(relation),
        }, key, replicate))

    @staticmethod
    def _placed(
        payload: dict[str, Any], key: Optional[str], replicate: bool
    ) -> dict[str, Any]:
        if key is not None:
            payload["key"] = key
        if replicate:
            payload["replicate"] = True
        return payload

    def query(
        self,
        expr: str,
        pipeline: bool = True,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> dict[str, Any]:
        """Run one algebra expression; returns the response payload.

        The payload carries ``relation`` (wire format: columns +
        decoded rows), ``rows``, and the simulated ``makespan_ms``.
        """
        request: dict[str, Any] = {
            "op": "query", "expr": expr,
            "pipeline": pipeline, "priority": priority,
        }
        if timeout is not None:
            request["timeout"] = timeout
        return self._request(request)

    def stats(self) -> dict[str, Any]:
        """The pool's serving snapshot (tenants, cache, admission gate)."""
        return self._request({"op": "stats"})["stats"]

    # -- plumbing ----------------------------------------------------------

    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        if self._sock is None:
            self.connect()
        self._sock.sendall(encode_line(payload))
        line = self._file.readline()
        if not line:
            raise ReproError("server closed the connection")
        response = decode_line(line)
        if not response.get("ok"):
            message = response.get("error", "unknown server error")
            if response.get("kind") == "AdmissionError":
                raise AdmissionError(message)
            raise ReproError(message)
        return response

    def __repr__(self) -> str:
        state = "connected" if self._sock else "disconnected"
        return (
            f"ServiceClient({self.host}:{self.port}, "
            f"tenant={self.tenant!r}, {state})"
        )
