"""The wire protocol of ``repro serve``: newline-delimited JSON.

One request per line, one response per line, always a JSON object.
Requests carry ``{"op": <verb>, ...}``; responses carry
``{"ok": true, ...}`` or ``{"ok": false, "error": <message>,
"kind": <exception class name>}``.  The verbs:

========  =============================================================
verb      payload
========  =============================================================
hello     ``tenant`` — bind this connection to a tenant's catalog
store     ``name``, ``relation`` — put a base relation on the disk
preload   ``name``, ``relation`` — mark a relation memory-resident
query     ``expr`` (algebra text), optional ``pipeline``, ``priority``,
          ``timeout`` — compile and run through the pool
stats     — pool snapshot (tenants, per-tenant counts, cache, gate)
ping      — liveness probe
health    — heartbeat: gate occupancy, deadline, fault-plan ledger
bye       — close the connection after acknowledging
========  =============================================================

Relations travel as ``{"columns": [[name, domain], ...], "rows":
[[value, ...], ...]}`` with *decoded* (human) values, so the payload
must be JSON-representable — strings, ints, floats, bools.  Column
domains are resolved through a per-tenant
:data:`~repro.relational.csv_io.DomainRegistry` on the server, so two
relations sent over the wire with same-named domains stay
join/union-compatible, exactly like two CSV files loaded with a shared
registry.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReproError
from repro.relational.csv_io import DomainRegistry
from repro.relational.domain import Domain
from repro.relational.relation import Relation
from repro.relational.schema import Column, Schema

__all__ = [
    "MAX_LINE_BYTES",
    "decode_line",
    "encode_line",
    "relation_from_wire",
    "relation_to_wire",
]

#: Longest accepted protocol line (a stored relation rides in one line).
MAX_LINE_BYTES = 32 * 1024 * 1024


def encode_line(payload: dict[str, Any]) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one protocol line; raises :class:`ReproError` when malformed.

    Oversized lines (> :data:`MAX_LINE_BYTES`) are refused before any
    JSON parsing — the same bound the server's stream reader enforces,
    so a hostile or corrupted peer cannot buffer unbounded input.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ReproError(
                f"protocol line of {len(line)} bytes exceeds the "
                f"{MAX_LINE_BYTES}-byte limit"
            )
        line = line.decode("utf-8", errors="replace")
    elif len(line) > MAX_LINE_BYTES:
        raise ReproError(
            f"protocol line of {len(line)} characters exceeds the "
            f"{MAX_LINE_BYTES}-byte limit"
        )
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed protocol line: {exc}") from None
    if not isinstance(payload, dict):
        raise ReproError(
            f"protocol messages are JSON objects, got {type(payload).__name__}"
        )
    return payload


def relation_to_wire(relation: Relation) -> dict[str, Any]:
    """A relation as a JSON-representable payload (decoded values)."""
    schema = relation.schema
    return {
        "columns": [
            [name, domain.name]
            for name, domain in zip(schema.names, schema.domains)
        ],
        "rows": [list(row) for row in relation.decoded()],
    }


def relation_from_wire(
    payload: dict[str, Any], registry: DomainRegistry
) -> Relation:
    """Rebuild a relation, resolving domains through ``registry``.

    The registry is keyed by **domain name** and shared per tenant, so
    columns naming the same domain across requests share one encoding
    (and therefore compare equal / join correctly).
    """
    try:
        columns = payload["columns"]
        rows = payload["rows"]
    except (KeyError, TypeError):
        raise ReproError(
            "a wire relation needs 'columns' and 'rows'"
        ) from None
    specs = []
    for entry in columns:
        try:
            name, domain_name = entry
        except (ValueError, TypeError):
            raise ReproError(
                f"wire column must be [name, domain], got {entry!r}"
            ) from None
        domain = registry.get(domain_name)
        if domain is None:
            domain = registry.setdefault(domain_name, Domain(domain_name))
        specs.append(Column(str(name), domain))
    schema = Schema(specs)
    return Relation.from_values(schema, [tuple(row) for row in rows])
