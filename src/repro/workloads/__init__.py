"""Workloads: synthetic generators and the paper's worked examples."""

from repro.workloads.generators import (
    division_workload,
    skewed_join_pair,
    zipf_relation,
    integer_schema,
    join_pair,
    overlapping_pair,
    random_relation,
    relation_with_duplicates,
)
from repro.workloads.paper_examples import division_example, three_by_three_pair
from repro.workloads.suppliers_parts import suppliers_parts_database

__all__ = [
    "division_example",
    "division_workload",
    "integer_schema",
    "join_pair",
    "overlapping_pair",
    "random_relation",
    "relation_with_duplicates",
    "skewed_join_pair",
    "suppliers_parts_database",
    "three_by_three_pair",
    "zipf_relation",
]
