"""The paper's worked examples, as ready-made relations.

* :func:`three_by_three_pair` — the 3 × 3 relations of the Fig 3-4 /
  Fig 4-1 walkthrough (concrete values chosen here; the figures only
  show index labels).
* :func:`division_example` — the Fig 7-1 division example.  The scanned
  table is partially illegible; this is the reconstruction consistent
  with every legible fragment (divisor B = {a, b, c, d}; dividend rows
  i|a, i|b, i|c, i|d, j|c, k|a, k|c, k|d), giving quotient C = {i} —
  only ``i`` is paired with *all* of B.
"""

from __future__ import annotations

from repro.relational.domain import Domain
from repro.relational.relation import Relation
from repro.relational.schema import Schema

__all__ = ["three_by_three_pair", "division_example"]


def three_by_three_pair() -> tuple[Relation, Relation]:
    """Two union-compatible 3-tuple, 3-column relations with one common tuple.

    Shaped like the running example of §3.2–§4.2 (Figures 3-3, 3-4,
    4-1): n = m = 3.  Exactly one tuple of A also appears in B, so the
    intersection array's result vector is easy to eyeball.
    """
    domain = Domain("fig34")
    schema = Schema.of(("c1", domain), ("c2", domain), ("c3", domain))
    a = Relation.from_values(schema, [
        (11, 12, 13),
        (21, 22, 23),
        (31, 32, 33),
    ])
    b = Relation.from_values(schema, [
        (41, 42, 43),
        (21, 22, 23),
        (51, 52, 53),
    ])
    return a, b


def division_example() -> tuple[Relation, Relation, Relation]:
    """The Fig 7-1 example: ``C = A ÷ B`` with quotient {i}.

    Returns ``(A, B, expected_C)`` with A over columns (A₁, A₂), B over
    (B₁), C over (C₁).
    """
    groups = Domain("fig71-a1")
    values = Domain("fig71-dom")
    a_schema = Schema.of(("A1", groups), ("A2", values))
    b_schema = Schema.of(("B1", values))
    a = Relation.from_values(a_schema, [
        ("i", "a"),
        ("i", "b"),
        ("i", "c"),
        ("i", "d"),
        ("j", "c"),
        ("k", "a"),
        ("k", "c"),
        ("k", "d"),
    ])
    b = Relation.from_values(b_schema, [("a",), ("b",), ("c",), ("d",)])
    c_schema = Schema.of(("C1", groups))
    expected = Relation.from_values(c_schema, [("i",)])
    return a, b, expected
