"""Codd's suppliers-and-parts database — reference [1]'s classic.

The paper's relational model is Codd's (its first reference); the
suppliers/parts/shipments schema is the canonical exercise for every
operator the paper makes systolic, including the famous division query
"suppliers who supply *every* part".  Used by the integration tests and
the ``suppliers_parts.py`` example.
"""

from __future__ import annotations

from repro.relational.domain import Domain, IntegerDomain
from repro.relational.relation import Relation
from repro.relational.schema import Schema

__all__ = ["suppliers_parts_database"]


def suppliers_parts_database() -> dict[str, Relation]:
    """The S/P/SP instance (Date's variant of Codd's example).

    Returns ``{"S": suppliers, "P": parts, "SP": shipments}`` with
    shared domains so every cross-relation operation is well-defined.
    """
    snum = Domain("sno")
    pnum = Domain("pno")
    names = Domain("name")
    cities = Domain("city")
    # Magnitude comparisons (θ-joins on weight/qty) need an
    # order-preserving encoding; the identity encoding provides it.
    numbers = IntegerDomain("number")

    suppliers = Relation.from_values(
        Schema.of(("sno", snum), ("sname", names), ("status", numbers),
                  ("city", cities)),
        [
            ("S1", "Smith", 20, "London"),
            ("S2", "Jones", 10, "Paris"),
            ("S3", "Blake", 30, "Paris"),
            ("S4", "Clark", 20, "London"),
            ("S5", "Adams", 30, "Athens"),
        ],
    )
    parts = Relation.from_values(
        Schema.of(("pno", pnum), ("pname", names), ("color", names),
                  ("weight", numbers), ("city", cities)),
        [
            ("P1", "Nut", "Red", 12, "London"),
            ("P2", "Bolt", "Green", 17, "Paris"),
            ("P3", "Screw", "Blue", 17, "Oslo"),
            ("P4", "Screw", "Red", 14, "London"),
            ("P5", "Cam", "Blue", 12, "Paris"),
            ("P6", "Cog", "Red", 19, "London"),
        ],
    )
    shipments = Relation.from_values(
        Schema.of(("sno", snum), ("pno", pnum), ("qty", numbers)),
        [
            ("S1", "P1", 300), ("S1", "P2", 200), ("S1", "P3", 400),
            ("S1", "P4", 200), ("S1", "P5", 100), ("S1", "P6", 100),
            ("S2", "P1", 300), ("S2", "P2", 400),
            ("S3", "P2", 200),
            ("S4", "P2", 200), ("S4", "P4", 300), ("S4", "P5", 400),
        ],
    )
    return {"S": suppliers, "P": parts, "SP": shipments}
