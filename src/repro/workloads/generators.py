"""Synthetic workload generators for tests and benchmarks.

The paper's §8 performance analysis assumes relations of controlled
cardinality and tuple width; its operator sections exercise controlled
overlap (intersection selectivity), duplication factors (§5), join
selectivity (§6), and divisor coverage (§7).  These generators produce
exactly those shapes, deterministically from a seed, using numpy for
speed at benchmark scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ReproError
from repro.relational.domain import IntegerDomain
from repro.relational.relation import MultiRelation, Relation
from repro.relational.schema import Column, Schema

__all__ = [
    "integer_schema",
    "zipf_relation",
    "skewed_join_pair",
    "random_relation",
    "overlapping_pair",
    "relation_with_duplicates",
    "join_pair",
    "division_workload",
]

_SHARED_INT = IntegerDomain("int")


def integer_schema(arity: int, domain: Optional[IntegerDomain] = None) -> Schema:
    """An ``arity``-column schema over one shared integer domain."""
    if arity < 1:
        raise ReproError(f"arity must be >= 1, got {arity}")
    dom = domain or _SHARED_INT
    return Schema(Column(f"c{k}", dom) for k in range(arity))


def _unique_rows(
    rng: np.random.Generator, n: int, arity: int, universe: int
) -> list[tuple[int, ...]]:
    """``n`` distinct random tuples with entries in [0, universe)."""
    if universe ** arity < n:
        raise ReproError(
            f"cannot draw {n} distinct tuples of arity {arity} from a "
            f"universe of {universe} values per column"
        )
    rows: set[tuple[int, ...]] = set()
    ordered: list[tuple[int, ...]] = []
    while len(ordered) < n:
        batch = rng.integers(0, universe, size=(n, arity))
        for row in map(tuple, batch.tolist()):
            if row not in rows:
                rows.add(row)
                ordered.append(row)
                if len(ordered) == n:
                    break
    return ordered


def random_relation(
    n: int, arity: int, universe: int = 1000, seed: int = 0
) -> Relation:
    """A relation of ``n`` distinct uniform-random tuples."""
    schema = integer_schema(arity)
    if n == 0:
        return Relation(schema)
    rng = np.random.default_rng(seed)
    return Relation(schema, _unique_rows(rng, n, arity, universe))


def overlapping_pair(
    n_a: int,
    n_b: int,
    overlap: int,
    arity: int = 3,
    universe: int = 10_000,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """Two union-compatible relations sharing exactly ``overlap`` tuples.

    ``|A ∩ B| = overlap`` by construction — the intersection-array
    selectivity knob.
    """
    if overlap > min(n_a, n_b):
        raise ReproError(
            f"overlap {overlap} exceeds min cardinality {min(n_a, n_b)}"
        )
    schema = integer_schema(arity)
    rng = np.random.default_rng(seed)
    pool = _unique_rows(rng, n_a + n_b - overlap, arity, universe)
    shared = pool[:overlap]
    a_only = pool[overlap:n_a]
    b_only = pool[n_a:]
    a_rows = shared + a_only
    b_rows = shared + b_only
    rng.shuffle(a_rows)
    rng.shuffle(b_rows)
    return Relation(schema, a_rows), Relation(schema, b_rows)


def relation_with_duplicates(
    n_distinct: int,
    duplication: float,
    arity: int = 3,
    universe: int = 10_000,
    seed: int = 0,
) -> MultiRelation:
    """A multi-relation with ``n_distinct`` tuples, each repeated ~``duplication``×.

    ``duplication`` >= 1.0 is the mean multiplicity (§5's dedup input).
    """
    if duplication < 1.0:
        raise ReproError(f"duplication factor must be >= 1.0, got {duplication}")
    schema = integer_schema(arity)
    if n_distinct == 0:
        return MultiRelation(schema)
    rng = np.random.default_rng(seed)
    base = _unique_rows(rng, n_distinct, arity, universe)
    rows = list(base)
    extra_total = round(n_distinct * (duplication - 1.0))
    if extra_total:
        picks = rng.integers(0, n_distinct, size=extra_total)
        rows.extend(base[p] for p in picks.tolist())
    rng.shuffle(rows)
    return MultiRelation(schema, rows)


def join_pair(
    n_a: int,
    n_b: int,
    matches: int,
    payload_arity: int = 2,
    universe: int = 10_000,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """Relations joinable on column 0 with ~``matches`` matching pairs.

    ``matches`` join-key values are shared one-to-one; the remaining
    keys on each side are disjoint, so the equi-join on column 0 has
    exactly ``matches`` result tuples.
    """
    if matches > min(n_a, n_b):
        raise ReproError(
            f"matches {matches} exceeds min cardinality {min(n_a, n_b)}"
        )
    key_domain = IntegerDomain("key")
    a_schema = Schema(
        [Column("key", key_domain)]
        + [Column(f"a{k}", _SHARED_INT) for k in range(payload_arity)]
    )
    b_schema = Schema(
        [Column("key", key_domain)]
        + [Column(f"b{k}", _SHARED_INT) for k in range(payload_arity)]
    )
    rng = np.random.default_rng(seed)
    total_keys = n_a + n_b - matches
    keys = rng.permutation(max(universe, total_keys))[:total_keys].tolist()
    shared = keys[:matches]
    a_keys = shared + keys[matches:n_a]
    b_keys = shared + keys[n_a:]

    def rows(side_keys: list[int], n: int) -> list[tuple[int, ...]]:
        payload = rng.integers(0, universe, size=(n, payload_arity)).tolist()
        return [
            (key, *extra) for key, extra in zip(side_keys, payload)
        ]

    a_rows = rows(a_keys, n_a)
    b_rows = rows(b_keys, n_b)
    rng.shuffle(a_rows)
    rng.shuffle(b_rows)
    return Relation(a_schema, a_rows), Relation(b_schema, b_rows)


def division_workload(
    n_groups: int,
    divisor_size: int,
    full_coverage: int,
    seed: int = 0,
) -> tuple[Relation, Relation, int]:
    """A (dividend, divisor) pair with a known quotient size.

    ``full_coverage`` of the ``n_groups`` A₁ values are paired with
    every divisor element; the rest miss at least one.  Returns
    ``(A, B, expected_quotient_size)``.
    """
    if full_coverage > n_groups:
        raise ReproError(
            f"full_coverage {full_coverage} exceeds n_groups {n_groups}"
        )
    if divisor_size < 1:
        raise ReproError("the divisor needs at least one element")
    group_domain = IntegerDomain("group")
    value_domain = IntegerDomain("value")
    a_schema = Schema.of(("a1", group_domain), ("a2", value_domain))
    b_schema = Schema.of(("b1", value_domain))
    rng = np.random.default_rng(seed)
    divisor_values = list(range(divisor_size))
    rows: list[tuple[int, int]] = []
    for group in range(n_groups):
        if group < full_coverage:
            covered = divisor_values
        else:
            # Drop at least one required value; maybe add stray values.
            keep = rng.integers(0, divisor_size - 1) if divisor_size > 1 else 0
            covered = divisor_values[: int(keep)]
            if rng.random() < 0.5:
                covered = covered + [divisor_size + int(rng.integers(0, 5))]
        rows.extend((group, value) for value in covered)
    rng.shuffle(rows)
    # Groups whose rows were all dropped never appear in A, so they are
    # not candidates; the expected quotient is exactly the covered ones.
    a = Relation(a_schema, rows)
    b = Relation(b_schema, [(v,) for v in divisor_values])
    return a, b, full_coverage


def zipf_relation(
    n: int,
    arity: int = 2,
    skew: float = 1.5,
    universe: int = 1000,
    seed: int = 0,
) -> MultiRelation:
    """A multi-relation whose values follow a (truncated) Zipf law.

    Heavy skew concentrates values, producing many duplicate tuples —
    the §5 dedup stress case — and, used as a join column, the
    degenerate near-|A|·|B| join outputs §6.2 warns about.
    """
    if skew <= 1.0:
        raise ReproError(f"zipf skew must be > 1.0, got {skew}")
    schema = integer_schema(arity)
    if n == 0:
        return MultiRelation(schema)
    rng = np.random.default_rng(seed)
    # Rejection-free truncated zipf: sample and clip to the universe.
    raw = rng.zipf(skew, size=(n * 2, arity))
    clipped = raw[(raw <= universe).all(axis=1)][:n]
    while len(clipped) < n:
        extra = rng.zipf(skew, size=(n, arity))
        clipped = np.concatenate(
            [clipped, extra[(extra <= universe).all(axis=1)]]
        )[:n]
    rows = [tuple(int(v) - 1 for v in row) for row in clipped]
    return MultiRelation(schema, rows)


def skewed_join_pair(
    n_a: int,
    n_b: int,
    skew: float = 1.5,
    key_universe: int = 50,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """Join inputs whose keys are Zipf-distributed over a small universe.

    Hot keys appear on both sides many times, so the equi-join output
    grows toward the |A|·|B| degenerate bound (§6.2).  Payload columns
    keep the tuples distinct.
    """
    if skew <= 1.0:
        raise ReproError(f"zipf skew must be > 1.0, got {skew}")
    key_domain = IntegerDomain("key")
    a_schema = Schema(
        [Column("key", key_domain), Column("a_payload", _SHARED_INT)]
    )
    b_schema = Schema(
        [Column("key", key_domain), Column("b_payload", _SHARED_INT)]
    )
    rng = np.random.default_rng(seed)

    def keys(n: int) -> list[int]:
        raw = rng.zipf(skew, size=n * 3)
        usable = raw[raw <= key_universe][:n]
        while len(usable) < n:
            extra = rng.zipf(skew, size=n)
            usable = np.concatenate([usable, extra[extra <= key_universe]])[:n]
        return [int(k) - 1 for k in usable]

    a_rows = [(k, p) for p, k in enumerate(keys(n_a))]
    b_rows = [(k, p) for p, k in enumerate(keys(n_b))]
    return Relation(a_schema, a_rows), Relation(b_schema, b_rows)
