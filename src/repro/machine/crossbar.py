"""The crossbar switch of Fig 9-1.

A crossbar is internally non-blocking: any set of memory↔device links
may be up simultaneously, provided no memory port and no device port
carries two links at once.  The switch records every configuration the
scheduler establishes, validates it against those port constraints, and
reports how often it was reconfigured — the §9 system "is repeated for
each relational operation in the transaction", one configuration per
operation, with "several operations ... run concurrently".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityError, PlanError

__all__ = ["Link", "CrossbarSwitch"]


@dataclass(frozen=True)
class Link:
    """One memory↔device connection during a time interval."""

    memory: str
    device: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise PlanError(f"link interval is inverted: {self}")

    def overlaps(self, other: "Link") -> bool:
        """Whether two links' intervals intersect (open at the ends)."""
        return self.start < other.end and other.start < self.end


class CrossbarSwitch:
    """Connection fabric between memory modules and systolic devices."""

    def __init__(self, memory_names: list[str], device_names: list[str]) -> None:
        if not memory_names or not device_names:
            raise CapacityError(
                "a crossbar needs at least one memory and one device port"
            )
        self._memory_ports = set(memory_names)
        self._device_ports = set(device_names)
        self._links: list[Link] = []

    # -- configuration -----------------------------------------------------

    def establish(self, memory: str, device: str, start: float, end: float) -> Link:
        """Hold a memory↔device link for [start, end); checks conflicts."""
        if memory not in self._memory_ports:
            raise PlanError(
                f"unknown memory port {memory!r}; have {sorted(self._memory_ports)}"
            )
        if device not in self._device_ports:
            raise PlanError(
                f"unknown device port {device!r}; have {sorted(self._device_ports)}"
            )
        link = Link(memory, device, start, end)
        for existing in self._links:
            if not link.overlaps(existing):
                continue
            if existing.memory == memory and existing.device != device:
                raise CapacityError(
                    f"memory port {memory!r} already linked to "
                    f"{existing.device!r} during [{existing.start:.6f}, "
                    f"{existing.end:.6f})"
                )
        self._links.append(link)
        return link

    # -- queries -------------------------------------------------------------

    @property
    def links(self) -> tuple[Link, ...]:
        """All links established so far, in creation order."""
        return tuple(self._links)

    def memory_free(self, memory: str, start: float, end: float) -> bool:
        """Whether a memory port is unlinked throughout [start, end)."""
        probe = Link(memory, "?", start, end)
        return not any(
            link.memory == memory and link.overlaps(probe) for link in self._links
        )

    def memory_free_at(self, memory: str, instant: float) -> float:
        """Earliest time ≥ ``instant`` at which a memory port is free."""
        time = instant
        changed = True
        while changed:
            changed = False
            for link in self._links:
                if link.memory == memory and link.start <= time < link.end:
                    time = link.end
                    changed = True
        return time

    def earliest_window(self, memory: str, ready: float, duration: float) -> float:
        """Earliest start ≥ ``ready`` of a ``duration``-long free window.

        Finds the first gap in the memory port's link intervals long
        enough to hold the whole transfer.
        """
        if duration < 0:
            raise PlanError(f"negative window duration: {duration}")
        intervals = sorted(
            (link.start, link.end)
            for link in self._links
            if link.memory == memory and link.end > link.start
        )
        start = ready
        for busy_start, busy_end in intervals:
            if busy_end <= start:
                continue
            if busy_start >= start + duration:
                break
            start = busy_end
        return start

    def configurations(self) -> int:
        """Number of link establishments (≈ crossbar reconfigurations)."""
        return len(self._links)

    def concurrency_profile(self) -> float:
        """Peak number of simultaneously-held links."""
        events: list[tuple[float, int]] = []
        for link in self._links:
            if link.end > link.start:
                events.append((link.start, +1))
                events.append((link.end, -1))
        events.sort()
        active = peak = 0
        for _, delta in events:
            active += delta
            peak = max(peak, active)
        return peak

    def __repr__(self) -> str:
        return (
            f"CrossbarSwitch({len(self._memory_ports)} memories × "
            f"{len(self._device_ports)} devices, {len(self._links)} links)"
        )
