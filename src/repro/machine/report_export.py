"""Export execution reports for external analysis.

An :class:`~repro.machine.scheduler.ExecutionReport` is a timeline;
this module serializes it — JSON for tooling, CSV for spreadsheets —
with the derived figures (makespan, serial sum, concurrency speedup,
per-device busy time) included, so a §9-style machine study can be
post-processed without re-running the simulation.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.machine.scheduler import ExecutionReport

__all__ = ["report_to_dict", "report_to_json", "report_to_csv"]


def report_to_dict(report: ExecutionReport) -> dict:
    """The report as plain data (JSON-serializable)."""
    return {
        "makespan_seconds": report.makespan,
        "serial_seconds": report.serial_seconds,
        "concurrency_speedup": report.concurrency_speedup,
        "device_busy_seconds": report.device_busy_seconds(),
        "steps": [
            {
                "label": step.label,
                "device": step.device,
                "start_seconds": step.start,
                "end_seconds": step.end,
                "duration_seconds": step.duration,
                "output_key": step.output_key,
                "output_memory": step.output_memory,
                "input_keys": list(step.input_keys),
                "pulses": step.pulses,
                "block_runs": step.block_runs,
                "output_bytes": step.nbytes_out,
            }
            for step in sorted(report.steps, key=lambda s: (s.start, s.label))
        ],
    }


def report_to_json(report: ExecutionReport, path: str | Path) -> None:
    """Write the report as pretty-printed JSON."""
    Path(path).write_text(json.dumps(report_to_dict(report), indent=2))


def report_to_csv(report: ExecutionReport, path: str | Path) -> None:
    """Write the step timeline as CSV (one row per scheduled step)."""
    fields = [
        "label", "device", "start_seconds", "end_seconds",
        "duration_seconds", "output_key", "output_memory", "pulses",
        "block_runs", "output_bytes",
    ]
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(fields)
        for step in sorted(report.steps, key=lambda s: (s.start, s.label)):
            writer.writerow([
                step.label, step.device, step.start, step.end,
                step.duration, step.output_key, step.output_memory,
                step.pulses, step.block_runs, step.nbytes_out,
            ])
