"""Pipelined operator chains — the streaming reading of §9.

§9's machine moves data as *streams*: "The data is pipelined from the
memories through the switch and through the processor array.  The
output of the array is pipelined back into another memory."  When one
operation's output feeds the next, the downstream array need not wait
for the upstream one to finish — it can start as soon as the first
results emerge, i.e. after the upstream array's *fill* latency.

For a linear chain of systolic stages this gives the classic pipeline
law.  With per-stage fill latency ``f_i`` (pulses before the first
result emerges) and stream time ``s_i`` (pulses for the whole relation
to pass through at one tuple per pulse-slot):

* **store-and-forward** (each stage runs to completion, §9's simplest
  reading):  ``makespan = Σ (f_i + s_i)``
* **pipelined** (each stage starts on the predecessor's first output;
  streams overlap, the slowest stage sets the rhythm):
  ``makespan = Σ f_i + max_i s_i``

The win grows with chain length and stream size — quantified in
``benchmarks/bench_pipelining.py`` (E17).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import PlanError

__all__ = ["StageCost", "ChainTiming", "analyze_chain"]


@dataclass(frozen=True)
class StageCost:
    """One systolic stage in a chain.

    ``fill`` — pulses (or seconds; any one unit) from first input to
    first output: the array's latency, roughly rows + columns.
    ``stream`` — additional pulses for the rest of the relation to
    follow the first result through.
    """

    name: str
    fill: float
    stream: float

    def __post_init__(self) -> None:
        if self.fill < 0 or self.stream < 0:
            raise PlanError(f"stage costs must be non-negative: {self}")

    @property
    def total(self) -> float:
        """The stage's stand-alone completion time."""
        return self.fill + self.stream


@dataclass(frozen=True)
class ChainTiming:
    """Makespans of one chain under both §9 execution disciplines."""

    stages: tuple[StageCost, ...]
    store_and_forward: float
    pipelined: float

    @property
    def speedup(self) -> float:
        """store-and-forward ÷ pipelined (≥ 1)."""
        if self.pipelined == 0:
            return 1.0
        return self.store_and_forward / self.pipelined

    @property
    def bottleneck(self) -> StageCost:
        """The stage whose stream time paces the pipeline."""
        return max(self.stages, key=lambda s: s.stream)


def analyze_chain(stages: Sequence[StageCost]) -> ChainTiming:
    """Apply the pipeline law to a linear chain of systolic stages."""
    if not stages:
        raise PlanError("a chain needs at least one stage")
    ordered = tuple(stages)
    store_and_forward = sum(stage.total for stage in ordered)
    pipelined = sum(stage.fill for stage in ordered) + max(
        stage.stream for stage in ordered
    )
    return ChainTiming(
        stages=ordered,
        store_and_forward=store_and_forward,
        pipelined=pipelined,
    )
