"""Song's tree machine — §9's comparison architecture (ref [9]).

"Song [9] has suggested the use of a tree machine for database
applications.  The leaf nodes of the tree machine are responsible for
data storage, and for a limited amount of processing of the data.  The
tree structure itself is used to broadcast instructions and data, and
to combine results of low-level computations on the data."

This is a functional-plus-cost model at the same granularity as the
systolic pulse counts: one tree *cycle* moves data one tree level.  A
query tuple is broadcast down ``depth`` levels, compared at every leaf
in one cycle, and the OR/match responses combine up ``depth`` levels;
queries pipeline one per cycle, so a probe batch of ``q`` tuples
against loaded leaves costs ``q + 2·depth`` cycles (plus loading).
Relations larger than the leaf count are processed in leaf-sized
blocks.  Enumerative results (join matches) must be *extracted* through
the root one per cycle — the serialization §9's "detailed comparison"
would weigh against the systolic arrays' parallel edge output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CapacityError
from repro.relational import algebra
from repro.relational.relation import MultiRelation, Relation

__all__ = ["TreeRun", "TreeMachine"]


@dataclass
class TreeRun:
    """Outcome and cost of one tree-machine operation."""

    relation: Relation
    cycles: int
    blocks: int
    comparisons: int


class TreeMachine:
    """A binary tree of processors with data stored at the leaves."""

    def __init__(self, leaves: int = 1024) -> None:
        if leaves < 1:
            raise CapacityError(f"a tree machine needs >= 1 leaf, got {leaves}")
        self.leaves = leaves

    @property
    def depth(self) -> int:
        """Tree depth: levels between root and leaves."""
        return max(1, math.ceil(math.log2(self.leaves))) if self.leaves > 1 else 1

    # -- cost helpers -----------------------------------------------------

    def _blocks(self, n: int) -> int:
        return max(1, math.ceil(n / self.leaves))

    def _load_cycles(self, n_block: int) -> int:
        # Tuples stream down the tree one per cycle after a depth-fill.
        return n_block + self.depth

    def _probe_cycles(self, n_queries: int) -> int:
        # One query per cycle after the pipeline fills both ways.
        return n_queries + 2 * self.depth

    # -- operations ----------------------------------------------------------

    def intersection(self, a: Relation, b: Relation) -> TreeRun:
        """``A ∩ B``: load B blocks into leaves, probe with every a_i."""
        a.schema.require_union_compatible(b.schema)
        result = algebra.intersection(a, b)
        if not a or not b:
            return TreeRun(result, cycles=0, blocks=0, comparisons=0)
        blocks = self._blocks(len(b))
        cycles = 0
        for block in range(blocks):
            block_size = min(self.leaves, len(b) - block * self.leaves)
            cycles += self._load_cycles(block_size)
            cycles += self._probe_cycles(len(a))
        comparisons = len(a) * len(b)
        return TreeRun(result, cycles=cycles, blocks=blocks,
                       comparisons=comparisons)

    def remove_duplicates(self, a: MultiRelation) -> TreeRun:
        """Dedup: insert tuples one by one, probing before each insert."""
        result = algebra.remove_duplicates(a)
        if not a:
            return TreeRun(result, cycles=0, blocks=0, comparisons=0)
        if len(a) > self.leaves:
            raise CapacityError(
                f"tree dedup holds the growing distinct set in the leaves; "
                f"{len(a)} tuples exceed {self.leaves} leaves"
            )
        # Each tuple: broadcast down, compare, response up, conditional
        # insert — pipelined one per cycle plus the two-way fill.
        cycles = self._probe_cycles(len(a))
        comparisons = len(a) * (len(a) - 1) // 2
        return TreeRun(result, cycles=cycles, blocks=1, comparisons=comparisons)

    def join(
        self, a: Relation, b: Relation,
        on: list[tuple[int, int]],
    ) -> TreeRun:
        """Equi-join: probe B-loaded leaves with each a_i; extract matches.

        Every match must leave through the root, one per cycle — the
        tree's output bottleneck relative to the join array's
        per-row edge outputs.
        """
        result = algebra.join(a, b, on)
        if not a or not b:
            return TreeRun(result, cycles=0, blocks=0, comparisons=0)
        blocks = self._blocks(len(b))
        matches = len(result)
        cycles = 0
        for block in range(blocks):
            block_size = min(self.leaves, len(b) - block * self.leaves)
            cycles += self._load_cycles(block_size)
            cycles += self._probe_cycles(len(a))
        cycles += matches  # root extraction, one concatenated tuple per cycle
        comparisons = len(a) * len(b)
        return TreeRun(result, cycles=cycles, blocks=blocks,
                       comparisons=comparisons)

    def difference(self, a: Relation, b: Relation) -> TreeRun:
        """``A − B``: the intersection probe with the keep-bit inverted.

        Identical data movement to :meth:`intersection` — the root
        simply keeps the a_i whose OR-combined response is FALSE
        (§4.3's inverter, tree-shaped).
        """
        a.schema.require_union_compatible(b.schema)
        result = algebra.difference(a, b)
        if not a or not b:
            return TreeRun(result, cycles=0, blocks=0, comparisons=0)
        probe = self.intersection(a, b)
        return TreeRun(result, cycles=probe.cycles, blocks=probe.blocks,
                       comparisons=probe.comparisons)

    def divide(self, a: Relation, b: Relation) -> TreeRun:
        """``A ÷ B`` (binary ÷ unary): dividend pairs at the leaves.

        The dividend is loaded once; each divisor element is broadcast
        and the per-x responses combine up the tree; an x survives
        every round iff it covers all of B.  Quotient members then
        extract through the root one per cycle.
        """
        result = algebra.divide(a, b)
        if not a or not b:
            return TreeRun(result, cycles=0, blocks=0, comparisons=0)
        if len(a) > self.leaves:
            raise CapacityError(
                f"tree division holds the dividend at the leaves; "
                f"{len(a)} pairs exceed {self.leaves} leaves"
            )
        load = self._load_cycles(len(a))
        probes = self._probe_cycles(len(b))
        extraction = len(result)
        cycles = load + probes + extraction
        comparisons = len(a) * len(b)
        return TreeRun(result, cycles=cycles, blocks=1,
                       comparisons=comparisons)

    def __repr__(self) -> str:
        return f"TreeMachine({self.leaves} leaves, depth {self.depth})"
