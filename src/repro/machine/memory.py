"""Memory modules of the integrated system (Fig 9-1 left column).

"Initially, the relevant relations are read from disks into memories
... The data is pipelined from the memories through the switch and
through the processor array.  The output of the array is pipelined back
into another memory."  Each module tracks what it holds (named
relations with byte sizes) and enforces its capacity; streaming-rate
limits are applied by the scheduler using the module's bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError, PlanError
from repro.relational.relation import Relation

__all__ = ["MemoryModule", "relation_bytes"]


def relation_bytes(relation: Relation, element_bits: int = 32) -> int:
    """Stored size of a relation: n tuples × arity × element width."""
    if element_bits < 1:
        raise PlanError(f"element_bits must be >= 1, got {element_bits}")
    if len(relation) == 0:
        return 0
    return len(relation) * relation.arity * ((element_bits + 7) // 8)


@dataclass
class _Resident:
    relation: Relation
    nbytes: int


class MemoryModule:
    """One random-access memory module on the crossbar."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int = 4 * 1024 * 1024,
        bandwidth_bytes_per_s: float = 500_000 / 0.017,
    ) -> None:
        # Default bandwidth matches §8's disk-rate argument: the system
        # must absorb ~500 KB / 17 ms per stream.
        if capacity_bytes < 1 or bandwidth_bytes_per_s <= 0:
            raise CapacityError(
                f"memory {name!r}: invalid capacity/bandwidth "
                f"({capacity_bytes}, {bandwidth_bytes_per_s})"
            )
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self._resident: dict[str, _Resident] = {}

    # -- contents ------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently occupied."""
        return sum(item.nbytes for item in self._resident.values())

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.capacity_bytes - self.used_bytes

    def holds(self, key: str) -> bool:
        """Whether a named relation is resident here."""
        return key in self._resident

    def store(self, key: str, relation: Relation, nbytes: int) -> None:
        """Place a relation in this module."""
        if key in self._resident:
            raise PlanError(f"memory {self.name!r} already holds {key!r}")
        if nbytes > self.free_bytes:
            raise CapacityError(
                f"memory {self.name!r} cannot fit {key!r}: needs {nbytes} "
                f"bytes, {self.free_bytes} free"
            )
        self._resident[key] = _Resident(relation, nbytes)

    def load(self, key: str) -> Relation:
        """Fetch a resident relation."""
        try:
            return self._resident[key].relation
        except KeyError:
            raise PlanError(
                f"memory {self.name!r} does not hold {key!r}; "
                f"has {sorted(self._resident)}"
            ) from None

    def size_of(self, key: str) -> int:
        """Byte size of a resident relation."""
        try:
            return self._resident[key].nbytes
        except KeyError:
            raise PlanError(
                f"memory {self.name!r} does not hold {key!r}"
            ) from None

    def evict(self, key: str) -> None:
        """Drop a resident relation, freeing its space."""
        if key not in self._resident:
            raise PlanError(f"memory {self.name!r} does not hold {key!r}")
        del self._resident[key]

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to stream ``nbytes`` through this module's port."""
        if nbytes < 0:
            raise PlanError(f"negative transfer size: {nbytes}")
        return nbytes / self.bandwidth_bytes_per_s

    def __repr__(self) -> str:
        return (
            f"MemoryModule({self.name!r}, {self.used_bytes}/"
            f"{self.capacity_bytes} bytes, {len(self._resident)} relations)"
        )
