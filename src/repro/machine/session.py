"""A tenant's thin handle on the engine pool.

The session is the top layer of the split architecture: it binds one
tenant's :class:`~repro.machine.catalog.Catalog` to the shared
:class:`~repro.machine.pool.EnginePool` and re-exposes the familiar
machine verbs — ``store``/``preload``/``compile``/``run``/``run_many``
— so code written against :class:`SystolicDatabaseMachine` ports by
changing one constructor call.  Sessions hold no execution state of
their own; any number may be open per tenant, from any threads.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import env_choice, env_int
from repro.machine.catalog import Catalog
from repro.machine.physical import PhysicalPlan
from repro.machine.plan import PlanNode
from repro.machine.scheduler import ExecutionReport
from repro.relational.relation import Relation
from repro.relational.schema import ColumnRef

__all__ = ["Session"]


class Session:
    """One tenant's view of the pool: a catalog plus query defaults.

    ``priority`` (lower wins) and ``parallel`` are defaults applied to
    every query issued through this session; both can be overridden
    per call.

    ``shards`` opens the session against a *cluster* of simulated
    machines instead of one: relations are partitioned (or replicated)
    across per-shard catalogs and queries run through the
    :class:`~repro.shard.executor.ShardedExecutor`, with results and
    per-shard traces bit-identical to the single machine.  The defaults
    come from ``REPRO_SHARD_COUNT`` / ``REPRO_SHARD_STRATEGY``;
    ``shards=1`` (the default) is a literal pass-through to the
    unsharded path.
    """

    def __init__(
        self,
        pool,
        catalog: Catalog,
        priority: int = 0,
        parallel: Optional[bool] = None,
        shards: Optional[int] = None,
        shard_strategy: Optional[str] = None,
        partitioner=None,
    ) -> None:
        self.pool = pool
        self.catalog = catalog
        self.priority = priority
        self.parallel = parallel
        if shards is None:
            shards = env_int("REPRO_SHARD_COUNT", 1, minimum=1)
        if shard_strategy is None:
            from repro.shard.partition import STRATEGIES

            shard_strategy = env_choice(
                "REPRO_SHARD_STRATEGY", "hash", STRATEGIES
            )
        self.shards = shards
        self.shard_strategy = shard_strategy
        self._sharded = None
        if shards > 1:
            from repro.shard.executor import ShardedExecutor

            self._sharded = ShardedExecutor(
                pool,
                pool.sharded_catalog(
                    catalog.tenant, shards, shard_strategy,
                    partitioner=partitioner,
                ),
            )

    @property
    def tenant(self) -> str:
        return self.catalog.tenant

    @property
    def sharded_catalog(self):
        """The per-shard catalog map, or ``None`` when unsharded."""
        return self._sharded.catalog if self._sharded else None

    # -- catalog -----------------------------------------------------------

    def store(
        self,
        name: str,
        relation: Relation,
        key: Optional[ColumnRef] = None,
        replicate: bool = False,
    ) -> None:
        """Place a base relation on this tenant's disk(s).

        Sharded sessions split the relation by ``key`` (default:
        column 0) or replicate it onto every shard; the single-machine
        path has one disk, where both knobs are no-ops.
        """
        if self._sharded:
            self._sharded.catalog.store(
                name, relation, key=key, replicate=replicate
            )
        else:
            self.catalog.store(name, relation)

    def preload(
        self,
        name: str,
        relation: Relation,
        key: Optional[ColumnRef] = None,
        replicate: bool = False,
    ) -> None:
        """Mark a relation memory-resident for this tenant's queries."""
        if self._sharded:
            self._sharded.catalog.preload(
                name, relation, key=key, replicate=replicate
            )
        else:
            self.catalog.preload(name, relation)

    # -- queries -----------------------------------------------------------

    def compile(
        self,
        plans: Sequence[PlanNode] | PlanNode,
        arrivals: Optional[Sequence[float]] = None,
        pipeline: bool = True,
        use_cache: bool = True,
    ) -> PhysicalPlan:
        """Lower logical plans against this tenant's catalog.

        Sharded sessions return a
        :class:`~repro.shard.executor.ShardedCompilation` (per-shard
        physical plans plus the staged makespan prediction) instead of
        one :class:`PhysicalPlan`.
        """
        if self._sharded:
            return self._sharded.compile(
                plans, arrivals, pipeline=pipeline, use_cache=use_cache
            )
        return self.pool.compile(
            self.catalog, plans, arrivals,
            pipeline=pipeline, use_cache=use_cache,
        )

    def run(
        self,
        plan: PlanNode,
        pipeline: bool = True,
        parallel: Optional[bool] = None,
        priority: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> tuple[Relation, ExecutionReport]:
        """Execute one plan; returns (result, timed report)."""
        results, report = self.run_many(
            [plan], pipeline=pipeline, parallel=parallel,
            priority=priority, timeout=timeout,
        )
        return results[0], report

    def run_many(
        self,
        plans: Sequence[PlanNode],
        arrivals: Optional[Sequence[float]] = None,
        pipeline: bool = True,
        parallel: Optional[bool] = None,
        priority: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> tuple[list[Relation], ExecutionReport]:
        """Execute a transaction of several plans on one shared timeline.

        Admission, compilation (through the shared cross-tenant plan
        cache), and execution all happen inside the pool; the query
        runs against a fresh per-query machine state, so results and
        timeline are bit-identical to running alone.
        """
        from repro.machine.system import SystolicDatabaseMachine

        resolved = (
            self.parallel if parallel is None else parallel
        )
        if self._sharded:
            return self._sharded.execute(
                plans, arrivals,
                pipeline=pipeline,
                parallel=SystolicDatabaseMachine._resolve_parallel(resolved),
                priority=self.priority if priority is None else priority,
                timeout=timeout,
            )
        return self.pool.execute(
            self.catalog, plans, arrivals,
            pipeline=pipeline,
            parallel=SystolicDatabaseMachine._resolve_parallel(resolved),
            priority=self.priority if priority is None else priority,
            timeout=timeout,
        )

    def plan_cache_info(self) -> dict[str, int]:
        """The pool's shared plan-cache counters."""
        return self.pool.plan_cache_info()

    def __repr__(self) -> str:
        sharding = f", shards={self.shards}" if self.shards > 1 else ""
        return (
            f"Session(tenant={self.tenant!r}, "
            f"priority={self.priority}{sharding})"
        )
