"""A tenant's thin handle on the engine pool.

The session is the top layer of the split architecture: it binds one
tenant's :class:`~repro.machine.catalog.Catalog` to the shared
:class:`~repro.machine.pool.EnginePool` and re-exposes the familiar
machine verbs — ``store``/``preload``/``compile``/``run``/``run_many``
— so code written against :class:`SystolicDatabaseMachine` ports by
changing one constructor call.  Sessions hold no execution state of
their own; any number may be open per tenant, from any threads.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.machine.catalog import Catalog
from repro.machine.physical import PhysicalPlan
from repro.machine.plan import PlanNode
from repro.machine.scheduler import ExecutionReport
from repro.relational.relation import Relation

__all__ = ["Session"]


class Session:
    """One tenant's view of the pool: a catalog plus query defaults.

    ``priority`` (lower wins) and ``parallel`` are defaults applied to
    every query issued through this session; both can be overridden
    per call.
    """

    def __init__(
        self,
        pool,
        catalog: Catalog,
        priority: int = 0,
        parallel: Optional[bool] = None,
    ) -> None:
        self.pool = pool
        self.catalog = catalog
        self.priority = priority
        self.parallel = parallel

    @property
    def tenant(self) -> str:
        return self.catalog.tenant

    # -- catalog -----------------------------------------------------------

    def store(self, name: str, relation: Relation) -> None:
        """Place a base relation on this tenant's disk."""
        self.catalog.store(name, relation)

    def preload(self, name: str, relation: Relation) -> None:
        """Mark a relation memory-resident for this tenant's queries."""
        self.catalog.preload(name, relation)

    # -- queries -----------------------------------------------------------

    def compile(
        self,
        plans: Sequence[PlanNode] | PlanNode,
        arrivals: Optional[Sequence[float]] = None,
        pipeline: bool = True,
        use_cache: bool = True,
    ) -> PhysicalPlan:
        """Lower logical plans against this tenant's catalog."""
        return self.pool.compile(
            self.catalog, plans, arrivals,
            pipeline=pipeline, use_cache=use_cache,
        )

    def run(
        self,
        plan: PlanNode,
        pipeline: bool = True,
        parallel: Optional[bool] = None,
        priority: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> tuple[Relation, ExecutionReport]:
        """Execute one plan; returns (result, timed report)."""
        results, report = self.run_many(
            [plan], pipeline=pipeline, parallel=parallel,
            priority=priority, timeout=timeout,
        )
        return results[0], report

    def run_many(
        self,
        plans: Sequence[PlanNode],
        arrivals: Optional[Sequence[float]] = None,
        pipeline: bool = True,
        parallel: Optional[bool] = None,
        priority: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> tuple[list[Relation], ExecutionReport]:
        """Execute a transaction of several plans on one shared timeline.

        Admission, compilation (through the shared cross-tenant plan
        cache), and execution all happen inside the pool; the query
        runs against a fresh per-query machine state, so results and
        timeline are bit-identical to running alone.
        """
        from repro.machine.system import SystolicDatabaseMachine

        resolved = (
            self.parallel if parallel is None else parallel
        )
        return self.pool.execute(
            self.catalog, plans, arrivals,
            pipeline=pipeline,
            parallel=SystolicDatabaseMachine._resolve_parallel(resolved),
            priority=self.priority if priority is None else priority,
            timeout=timeout,
        )

    def plan_cache_info(self) -> dict[str, int]:
        """The pool's shared plan-cache counters."""
        return self.pool.plan_cache_info()

    def __repr__(self) -> str:
        return f"Session(tenant={self.tenant!r}, priority={self.priority})"
