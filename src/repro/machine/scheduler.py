"""Transaction scheduling on the integrated machine (§9).

§9's execution loop — configure the crossbar, pipeline an operation
from memories through a device into another memory, repeat, with
independent operations running concurrently — is a classic
resource-constrained list-scheduling problem.  The scheduler walks the
plan in topological order and starts each operation at the earliest
time its inputs, a device of the right kind, and the memory ports are
all simultaneously available.

Operation duration is the maximum of the device's compute time and the
memory-port streaming times (an array can only run as fast as its
slowest stream — the "high capacity for data transfer" requirement §9
opens with).
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import PlanError
from repro.machine.crossbar import CrossbarSwitch
from repro.obs import metrics
from repro.machine.device import CpuDevice, DeviceRun, SystolicDevice
from repro.machine.memory import MemoryModule
from repro.machine.plan import PlanNode

__all__ = [
    "ScheduledStep",
    "ExecutionReport",
    "DeviceRoster",
    "HostExecutor",
    "gantt",
]

#: A compute thunk: dependency op ids plus a function from the resolved
#: dependency results to this op's result.
Thunk = tuple[tuple[int, ...], Callable[[dict[int, Any]], Any]]


@dataclass
class ScheduledStep:
    """One operation (or disk load) placed on the timeline."""

    label: str
    device: str
    start: float
    end: float
    output_key: str
    output_memory: str
    input_keys: tuple[str, ...] = ()
    pulses: int = 0
    block_runs: int = 0
    nbytes_out: int = 0

    @property
    def duration(self) -> float:
        """Wall-clock seconds occupied by the step."""
        return self.end - self.start


@dataclass
class ExecutionReport:
    """The executed timeline of one transaction."""

    steps: list[ScheduledStep] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """End-to-end wall-clock time."""
        return max((step.end for step in self.steps), default=0.0)

    @property
    def serial_seconds(self) -> float:
        """Total work: what a one-op-at-a-time machine would take."""
        return sum(step.duration for step in self.steps)

    @property
    def concurrency_speedup(self) -> float:
        """serial ÷ makespan — the crossbar's overlap win."""
        if self.makespan == 0:
            return 1.0
        return self.serial_seconds / self.makespan

    def device_busy_seconds(self) -> dict[str, float]:
        """Busy time per device (and the disk)."""
        busy: dict[str, float] = {}
        for step in self.steps:
            busy[step.device] = busy.get(step.device, 0.0) + step.duration
        return busy

    def timeline(self) -> str:
        """Human-readable schedule for examples and debugging."""
        lines = [
            f"{'start':>10}  {'end':>10}  {'device':<14}  step",
            f"{'-' * 10}  {'-' * 10}  {'-' * 14}  {'-' * 30}",
        ]
        for step in sorted(self.steps, key=lambda s: (s.start, s.label)):
            lines.append(
                f"{step.start * 1e3:>8.3f}ms  {step.end * 1e3:>8.3f}ms  "
                f"{step.device:<14}  {step.label}"
            )
        lines.append(
            f"makespan {self.makespan * 1e3:.3f} ms, serial "
            f"{self.serial_seconds * 1e3:.3f} ms, speedup "
            f"{self.concurrency_speedup:.2f}×"
        )
        return "\n".join(lines)


class DeviceRoster:
    """Tracks when each device instance becomes free.

    With per-device predicted ``durations``, :meth:`pick` is
    **cost-aware**: it minimizes completion time (queueing delay plus
    predicted run time), so a heterogeneous roster routes a large
    relation to the big array even when a small one frees up first.
    Without durations it degrades to the first-free rule.

    Tie-breaking is **deterministic and documented** (pinned by
    ``tests/machine/test_roster_fairness.py``): on equal predicted
    completion the roster prefers, in order,

    1. *(only with ``fairness=True``)* the device with the fewest prior
       :meth:`pick` assignments — so equal work spreads round-robin
       across identical devices instead of piling onto the first name;
    2. the lexicographically smallest device name.

    The default (``fairness=False``) is exactly the historical rule —
    name order alone — so existing device assignments never reshuffle
    unless a caller opts in.
    """

    def __init__(
        self,
        devices: list[SystolicDevice | CpuDevice],
        fairness: bool = False,
    ) -> None:
        if not devices:
            raise PlanError("the machine needs at least one device")
        self.fairness = fairness
        self._free_at: dict[str, float] = {d.name: 0.0 for d in devices}
        self._assignments: dict[str, int] = {d.name: 0 for d in devices}
        self._by_kind: dict[str, list[SystolicDevice | CpuDevice]] = {}
        for device in devices:
            self._by_kind.setdefault(device.kind, []).append(device)

    def free_at(self, name: str) -> float:
        """When a device becomes free."""
        try:
            return self._free_at[name]
        except KeyError:
            raise PlanError(f"unknown device {name!r}") from None

    def assignments(self, name: str) -> int:
        """How many times :meth:`pick` has chosen a device."""
        try:
            return self._assignments[name]
        except KeyError:
            raise PlanError(f"unknown device {name!r}") from None

    def pick(
        self,
        kind: str,
        ready: float,
        durations: Optional[dict[str, float]] = None,
    ) -> tuple[SystolicDevice | CpuDevice, float]:
        """The device of ``kind`` that *finishes* earliest after ``ready``.

        ``durations`` maps device names to predicted run seconds; a
        missing entry (or ``None``) costs zero, reducing the choice to
        earliest availability.  Ties break deterministically by the
        documented stable order (see the class docstring): prior
        assignment count first when ``fairness`` is on, then device
        name.
        """
        candidates = self._by_kind.get(kind)
        if not candidates:
            raise PlanError(
                f"no device of kind {kind!r} is attached to the machine"
            )
        durations = durations or {}

        def completion(device) -> tuple[float, int, str]:
            start = max(ready, self._free_at[device.name])
            fair = self._assignments[device.name] if self.fairness else 0
            return start + durations.get(device.name, 0.0), fair, device.name

        best = min(candidates, key=completion)
        self._assignments[best.name] += 1
        return best, max(ready, self._free_at[best.name])

    def occupy(self, name: str, until: float) -> None:
        """Mark a device busy until ``until``."""
        self._free_at[name] = until


#: Backwards-compatible alias — the roster used to be a bare timeline.
DeviceTimeline = DeviceRoster


class HostExecutor:
    """Runs a transaction's compute thunks concurrently on host threads.

    §9's machine overlaps independent operations in *simulated* pulse
    time; this executor overlaps the host-side work of producing their
    results too.  It is a dependency-respecting wave scheduler: every
    thunk whose inputs are resolved is submitted to a thread pool, and
    completions release their dependents.  Thunks are pure functions of
    their dependency results (device ``execute`` calls, disk reads), so
    the result of a parallel run is bit-identical to the sequential
    topological order — only wall-clock changes.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        if max_workers < 1:
            raise PlanError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers

    def run(
        self,
        thunks: dict[int, Thunk],
        seed: Optional[dict[int, Any]] = None,
    ) -> dict[int, Any]:
        """Resolve every thunk; returns ``{op_id: result}`` incl. seeds.

        ``seed`` holds pre-resolved results (resident relations).  A
        dependency on an id in neither ``thunks`` nor ``seed``, or a
        dependency cycle, raises :class:`~repro.errors.PlanError`.
        """
        results: dict[int, Any] = dict(seed or {})
        known = set(results) | set(thunks)
        pending: dict[int, set[int]] = {}
        for op_id, (deps, _) in thunks.items():
            missing = [d for d in deps if d not in known]
            if missing:
                raise PlanError(
                    f"thunk {op_id} depends on unknown ops {missing}"
                )
            pending[op_id] = {d for d in deps if d not in results}
        if self.max_workers == 1 or len(pending) <= 1:
            return self._run_serial(thunks, pending, results)
        return self._run_parallel(thunks, pending, results)

    def _run_serial(
        self,
        thunks: dict[int, Thunk],
        pending: dict[int, set[int]],
        results: dict[int, Any],
    ) -> dict[int, Any]:
        while pending:
            ready = [op_id for op_id, deps in pending.items() if not deps]
            if not ready:
                raise PlanError(
                    f"dependency cycle among ops {sorted(pending)}"
                )
            for op_id in ready:
                results[op_id] = thunks[op_id][1](results)
                metrics.inc("machine.host.tasks")
                del pending[op_id]
            for deps in pending.values():
                deps.difference_update(ready)
        return results

    def _run_parallel(
        self,
        thunks: dict[int, Thunk],
        pending: dict[int, set[int]],
        results: dict[int, Any],
    ) -> dict[int, Any]:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers
        ) as pool:
            in_flight: dict[concurrent.futures.Future, int] = {}

            def submit_ready() -> None:
                ready = [
                    op_id for op_id, deps in pending.items() if not deps
                ]
                for op_id in ready:
                    del pending[op_id]
                    deps, fn = thunks[op_id]
                    # Snapshot the dependency results so the worker
                    # never reads the shared dict concurrently.
                    resolved = {d: results[d] for d in deps}
                    in_flight[pool.submit(fn, resolved)] = op_id
                if not ready and pending and not in_flight:
                    raise PlanError(
                        f"dependency cycle among ops {sorted(pending)}"
                    )

            submit_ready()
            while in_flight:
                done, _ = concurrent.futures.wait(
                    in_flight,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    op_id = in_flight.pop(future)
                    results[op_id] = future.result()
                    metrics.inc("machine.host.tasks")
                    for deps in pending.values():
                        deps.discard(op_id)
                submit_ready()
        return results


def gantt(report: ExecutionReport, width: int = 60) -> str:
    """Render the timeline as an ASCII Gantt chart, one row per device.

    Each row shows the device's busy intervals over the makespan,
    scaled to ``width`` characters — the §9 machine's concurrency at a
    glance.
    """
    if not report.steps:
        return "(empty timeline)"
    makespan = report.makespan
    if makespan <= 0:
        return "(zero-length timeline)"
    devices = sorted({step.device for step in report.steps})
    name_width = max(len(name) for name in devices)
    lines = []
    for device in devices:
        row = [" "] * width
        for step in report.steps:
            if step.device != device:
                continue
            start = int(step.start / makespan * (width - 1))
            end = max(start + 1, int(step.end / makespan * (width - 1)) + 1)
            for position in range(start, min(end, width)):
                row[position] = "#"
        lines.append(f"{device:>{name_width}} |{''.join(row)}|")
    scale = f"{' ' * name_width}  0{'':{width - 8}}{makespan * 1e3:.1f} ms"
    lines.append(scale)
    return "\n".join(lines)
