"""Static inference over logical plans: output schemas and row estimates.

The physical planner (and the optimizer's join pushdown) need to know,
*before executing anything*, what each plan node produces: its schema —
to count processor columns and resolve selection targets — and a row
estimate — to size §8's block decomposition and the streaming times.

Schemas are exact: they reuse the same layout arithmetic the executing
algebra uses (:func:`~repro.relational.algebra.equi_join_layout` and
friends), applied to empty relations.  Cardinalities are estimates in
the System-R tradition (selections keep a third, joins stay around the
larger input); base relations report their true stored size.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import PlanError
from repro.machine.plan import (
    Base,
    Dedup,
    Difference,
    Divide,
    Intersect,
    Join,
    PlanNode,
    Project,
    Select,
    Union,
)
from repro.relational import algebra
from repro.relational.relation import Relation
from repro.relational.schema import Schema

__all__ = ["infer_schema", "estimate_rows", "SELECTIVITY"]

#: Fraction of tuples a selection is assumed to keep (System R's 1/3).
SELECTIVITY = 1 / 3


def infer_schema(plan: PlanNode, schemas: Mapping[str, Schema]) -> Schema:
    """The exact output schema of a plan over named base schemas.

    Raises :class:`~repro.errors.PlanError` (or a schema error from the
    underlying layout check) when the plan is ill-typed — unknown base
    relation, unresolvable column, incompatible domains.
    """
    if isinstance(plan, Base):
        try:
            return schemas[plan.name]
        except KeyError:
            raise PlanError(
                f"no relation named {plan.name!r} in the catalog; "
                f"have {sorted(schemas)}"
            ) from None
    if isinstance(plan, (Intersect, Difference, Union)):
        left = infer_schema(plan.left, schemas)
        right = infer_schema(plan.right, schemas)
        left.require_union_compatible(right)
        return left
    if isinstance(plan, Dedup):
        return infer_schema(plan.child, schemas)
    if isinstance(plan, Select):
        child = infer_schema(plan.child, schemas)
        child.resolve(plan.column)  # fail early on a bad reference
        return child
    if isinstance(plan, Project):
        child = infer_schema(plan.child, schemas)
        return child.project(child.resolve_many(list(plan.columns)))
    if isinstance(plan, Join):
        left = Relation(infer_schema(plan.left, schemas))
        right = Relation(infer_schema(plan.right, schemas))
        if plan.ops is None:
            _, _, schema, _ = algebra.equi_join_layout(left, right,
                                                       list(plan.on))
        else:
            _, _, schema, _ = algebra.theta_join_layout(
                left, right, list(plan.on), list(plan.ops)
            )
        return schema
    if isinstance(plan, Divide):
        dividend = infer_schema(plan.left, schemas)
        value_pos = dividend.resolve(plan.a_value)
        if plan.a_group is None:
            if len(dividend) != 2:
                raise PlanError(
                    "a_group may only be omitted for a binary dividend "
                    "relation"
                )
            group_pos = 1 - value_pos
        else:
            group_pos = dividend.resolve(plan.a_group)
        return dividend.project([group_pos])
    raise PlanError(f"cannot infer the schema of {plan.describe()}")


def estimate_rows(plan: PlanNode, cardinalities: Mapping[str, int]) -> int:
    """Estimated output cardinality of a plan over named base sizes."""
    if isinstance(plan, Base):
        try:
            return cardinalities[plan.name]
        except KeyError:
            raise PlanError(
                f"no relation named {plan.name!r} in the catalog; "
                f"have {sorted(cardinalities)}"
            ) from None
    if isinstance(plan, Select):
        n = estimate_rows(plan.child, cardinalities)
        return max(1, int(n * SELECTIVITY)) if n else 0
    if isinstance(plan, (Dedup, Project)):
        return estimate_rows(plan.child, cardinalities)
    if isinstance(plan, Intersect):
        return min(estimate_rows(plan.left, cardinalities),
                   estimate_rows(plan.right, cardinalities))
    if isinstance(plan, Difference):
        return estimate_rows(plan.left, cardinalities)
    if isinstance(plan, Union):
        return (estimate_rows(plan.left, cardinalities)
                + estimate_rows(plan.right, cardinalities))
    if isinstance(plan, Join):
        # Equi-joins on a key stay near the larger input (§6.1); the
        # §6.2 degenerate blow-up is deliberately not assumed.
        return max(estimate_rows(plan.left, cardinalities),
                   estimate_rows(plan.right, cardinalities))
    if isinstance(plan, Divide):
        n = estimate_rows(plan.left, cardinalities)
        return max(1, n // 2) if n else 0
    raise PlanError(f"cannot estimate the cardinality of {plan.describe()}")
