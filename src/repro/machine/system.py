"""The integrated systolic database machine of Fig 9-1.

Memories on one side of a crossbar switch, systolic devices (plus the
host CPU) on the other, with a disk feeding the memories: "Initially,
the relevant relations are read from disks into memories.  Then the
crossbar switch is configured so that the relevant memories are
connected to the systolic array that will perform the first operation
... The output of the array is pipelined back into another memory.
This is repeated for each relational operation in the transaction.  Due
to the crossbar structure, several operations may be run concurrently."

:class:`SystolicDatabaseMachine` executes query plans exactly that way
and returns a timed :class:`~repro.machine.scheduler.ExecutionReport`.

Architecturally the machine is now the *single-tenant convenience
front-end* over the layered core: plan lowering and the two-phase
executor live in :mod:`repro.machine.execution`, the LRU plan cache in
:mod:`repro.machine.pool`.  This class owns one **persistent**
:class:`~repro.machine.execution.MachineState` — results stay resident
in its memories between ``run`` calls, §9's "the final results ...
reside in memory" — whereas the multi-tenant
:class:`~repro.machine.pool.EnginePool` builds a fresh state per
query.  Use the machine for scripts and experiments; use
``EnginePool.session()`` to serve concurrent tenants over shared
devices.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import obs
from repro.arrays.decomposition import ArrayCapacity
from repro.config import env_flag
from repro.errors import CapacityError, DeviceFaultError, PlanError
from repro.obs import metrics
from repro.machine.crossbar import CrossbarSwitch
from repro.machine.disk import MachineDisk
from repro.machine.execution import (
    MachineState,
    PlanExecutor,
    build_devices,
    place_resident,
    roster_fingerprint,
)
from repro.machine.memory import MemoryModule
from repro.machine.physical import (
    PhysicalPlan,
    PhysicalPlanner,
    plan_fingerprint,
)
from repro.machine.plan import (
    DEVICE_COMPARISON,
    DEVICE_DIVISION,
    DEVICE_JOIN,
    PlanNode,
)
from repro.machine.pool import PlanCache
from repro.machine.scheduler import ExecutionReport
from repro.perf.technology import PAPER_CONSERVATIVE, TechnologyModel
from repro.relational.relation import Relation

__all__ = ["SystolicDatabaseMachine"]

#: One device of each systolic kind — the literal Fig 9-1 configuration
#: ("Intersect", "Join", plus the division array of §7).
DEFAULT_DEVICES = (
    (DEVICE_COMPARISON, 1),
    (DEVICE_JOIN, 1),
    (DEVICE_DIVISION, 1),
)


class SystolicDatabaseMachine:
    """Fig 9-1: disk + memories + crossbar + systolic devices + CPU."""

    def __init__(
        self,
        memories: int = 4,
        devices: Sequence[tuple[str, int]] = DEFAULT_DEVICES,
        capacity: ArrayCapacity = ArrayCapacity(max_rows=63, max_cols=8),
        technology: TechnologyModel = PAPER_CONSERVATIVE,
        disk: Optional[MachineDisk] = None,
        memory_bytes: int = 4 * 1024 * 1024,
        element_bits: int = 32,
        backend=None,
        host_workers: Optional[int] = None,
        plan_cache_size: int = 64,
        faults=None,
    ) -> None:
        if memories < 2:
            raise CapacityError(
                "the machine needs at least two memories (§9: output is "
                "pipelined back into *another* memory)"
            )
        machine_disk = disk if disk is not None else MachineDisk(
            element_bits=element_bits
        )
        machine_memories = [
            MemoryModule(f"mem{m}", capacity_bytes=memory_bytes)
            for m in range(memories)
        ]
        machine_devices = build_devices(
            devices, capacity, technology, backend
        )
        crossbar = CrossbarSwitch(
            [m.name for m in machine_memories],
            [d.name for d in machine_devices] + ["disk"],
        )
        #: the persistent simulated state — memories and crossbar
        #: windows accumulate across runs, results stay resident.
        self._state = MachineState(
            element_bits, machine_disk, machine_memories, machine_devices,
            crossbar,
        )
        #: Active :class:`~repro.faults.plan.FaultPlan` (None = no faults).
        self.faults = faults
        self._executor = PlanExecutor(
            self._state, host_workers=host_workers, faults=faults
        )
        if plan_cache_size < 0:
            raise PlanError(
                f"plan_cache_size must be >= 0, got {plan_cache_size}"
            )
        self._plan_cache = PlanCache(plan_cache_size)
        #: bumped whenever the catalog changes (store/preload) — part of
        #: the plan-cache key, so stale physical plans never resurface.
        self._catalog_version = 0
        self._roster_fingerprint = roster_fingerprint(machine_devices)

    # -- the public surface delegates to the persistent state -----------------

    @property
    def element_bits(self) -> int:
        return self._state.element_bits

    @property
    def disk(self) -> MachineDisk:
        return self._state.disk

    @property
    def memories(self) -> list[MemoryModule]:
        return self._state.memories

    @property
    def devices(self) -> list:
        return self._state.devices

    @property
    def crossbar(self) -> CrossbarSwitch:
        return self._state.crossbar

    @property
    def _resident(self) -> dict[str, tuple[str, Relation, float, str]]:
        return self._state.resident

    @property
    def host_workers(self) -> Optional[int]:
        """Host threads for the compute phase (None → executor default)."""
        return self._executor.host_workers

    @host_workers.setter
    def host_workers(self, value: Optional[int]) -> None:
        self._executor.host_workers = value

    # -- catalog -------------------------------------------------------------

    def store(self, name: str, relation: Relation) -> None:
        """Place a base relation on the machine's disk."""
        self.disk.store(name, relation)
        self._catalog_version += 1

    def attach_store(self, store) -> None:
        """Back the machine's disk with a persistent relation store.

        Every relation held by the :class:`~repro.store.RelationStore`
        becomes queryable by name; selections over them prune chunks
        through the store's grid index during the disk read.  Bumps the
        catalog version so previously cached plans recompile against
        the store-backed sizes.
        """
        self.disk.attach_store(store)
        self._catalog_version += 1

    def preload(self, name: str, relation: Relation) -> None:
        """Place a relation directly in a memory module, ready at time 0.

        §9's memories hold results between operations and transactions
        ("the final results are eventually returned to the disk ...
        from the memory in which they reside"); a preloaded relation
        models exactly that — a prior transaction's output still
        resident, needing no disk read.
        """
        place_resident(self._state, name, relation)
        self._catalog_version += 1

    # -- compilation ------------------------------------------------------------

    def compile(
        self,
        plans: Sequence[PlanNode] | PlanNode,
        arrivals: Optional[Sequence[float]] = None,
        pipeline: bool = True,
        use_cache: bool = True,
    ) -> PhysicalPlan:
        """Lower logical plans into a :class:`PhysicalPlan` for this machine.

        Pure — nothing is loaded, stored, or timed on the machine
        itself, so a plan can be compiled, inspected (``explain()``),
        and then handed to :meth:`run_physical`.  With
        ``pipeline=False`` no chains are fused and execution is
        store-and-forward, §9's simplest reading.

        Structurally identical transactions (same plan shape,
        parameters, *and* subtree sharing — see
        :func:`~repro.machine.physical.plan_fingerprint`) hit an LRU
        cache instead of re-running the planner.  The key also covers
        the arrival schedule, the pipeline flag, the catalog version
        (bumped by :meth:`store`/:meth:`preload`), and the device
        roster, so a cached plan is only reused when the planner would
        provably reproduce it.  ``use_cache=False`` bypasses the cache
        for a single call.
        """
        if isinstance(plans, PlanNode):
            plans = [plans]
        metrics.inc("machine.compile.calls")
        with obs.span(
            "machine.compile", plans=len(plans), pipeline=bool(pipeline),
        ) as sp:
            if not use_cache or self._plan_cache.maxsize == 0:
                physical = PhysicalPlanner(self).compile(
                    plans, arrivals, pipeline=pipeline
                )
                sp.set(cached=False, ops=len(physical.ops))
                return physical
            key = (
                plan_fingerprint(plans),
                tuple(arrivals) if arrivals is not None else None,
                bool(pipeline),
                self._catalog_version,
                self._roster_fingerprint,
            )
            cached = self._plan_cache.get(key)
            if cached is not None:
                sp.set(cached=True, ops=len(cached.ops))
                return cached
            physical = PhysicalPlanner(self).compile(
                plans, arrivals, pipeline=pipeline
            )
            self._plan_cache.put(key, physical)
            sp.set(cached=False, ops=len(physical.ops))
            return physical

    def plan_cache_info(self) -> dict[str, int]:
        """Hit/miss counters and occupancy of the compile cache."""
        return self._plan_cache.info()

    # -- execution -------------------------------------------------------------

    def run(
        self,
        plan: PlanNode,
        pipeline: bool = True,
        parallel: Optional[bool] = None,
    ) -> tuple[Relation, ExecutionReport]:
        """Execute one plan; returns (result, timed report)."""
        results, report = self.run_many(
            [plan], pipeline=pipeline, parallel=parallel
        )
        return results[0], report

    def run_many(
        self,
        plans: Sequence[PlanNode],
        arrivals: Optional[Sequence[float]] = None,
        pipeline: bool = True,
        parallel: Optional[bool] = None,
    ) -> tuple[list[Relation], ExecutionReport]:
        """Execute a transaction of several plans on one shared timeline.

        Plans are independent unless they share sub-plan objects, in
        which case the shared node is computed once.  ``arrivals`` are
        optional per-plan release times (seconds): nothing belonging to
        a plan starts before its arrival — §9's "set of transactions"
        submitted over time.

        Each logical plan is lowered through :meth:`compile` first;
        producer→consumer systolic stages fuse into pipelined chains
        unless ``pipeline=False``.  Independent operations' host-side
        compute overlaps on threads unless ``parallel=False`` (or the
        ``REPRO_MACHINE_PARALLEL`` environment variable disables it);
        results and reports are identical either way.

        With a :class:`~repro.faults.plan.FaultPlan` attached, transient
        device/disk faults are retried in place; a device that exhausts
        its retry budget is quarantined and the transaction replanned
        against the surviving roster (graceful degradation).  A
        compute-phase failure mutates no persistent state — memories
        and crossbar windows only change during replay — so the replan
        re-executes from a clean slate.
        """
        replans = 0
        previous: Optional[PhysicalPlan] = None
        while True:
            quarantined = (
                set(self.faults.quarantined()) if self.faults else set()
            )
            if quarantined:
                healthy = [
                    d for d in self.devices if d.name not in quarantined
                ]
                try:
                    # Bypass the cache: its key carries the full-roster
                    # fingerprint, and degraded plans must not collide.
                    physical = PhysicalPlanner(
                        _HealthyView(self, healthy)
                    ).compile(plans, arrivals, pipeline=pipeline)
                except PlanError as exc:
                    raise DeviceFaultError(
                        f"no healthy device can run the plan after "
                        f"quarantining {sorted(quarantined)}",
                        quarantined=True,
                    ) from exc
                if previous is not None:
                    moved = sum(
                        1
                        for old, new in zip(previous.ops, physical.ops)
                        if old.device != new.device
                    )
                    if moved:
                        metrics.inc("faults.redispatches", moved)
            else:
                physical = self.compile(plans, arrivals, pipeline=pipeline)
            try:
                return self.run_physical(physical, parallel=parallel)
            except DeviceFaultError as exc:
                if (
                    not exc.quarantined
                    or exc.device is None
                    or replans >= len(self.devices)
                ):
                    raise
                replans += 1
                previous = physical
                metrics.inc("faults.replans")

    def run_physical(
        self,
        physical: PhysicalPlan,
        parallel: Optional[bool] = None,
    ) -> tuple[list[Relation], ExecutionReport]:
        """Execute an already-compiled physical plan.

        Returns one result per original plan (``physical.outputs``
        order) and the executed timeline.  The report is the ground
        truth; ``physical.predicted_makespan`` is the planner's
        port-blind forecast of the same schedule.  See
        :class:`~repro.machine.execution.PlanExecutor` for the
        two-phase (parallel compute, sequential replay) execution
        model.
        """
        return self._executor.run_physical(
            physical, parallel=self._resolve_parallel(parallel)
        )

    @staticmethod
    def _resolve_parallel(parallel: Optional[bool]) -> bool:
        if parallel is not None:
            return bool(parallel)
        return env_flag("REPRO_MACHINE_PARALLEL", True)

    def __repr__(self) -> str:
        kinds = ", ".join(d.name for d in self.devices)
        return (
            f"SystolicDatabaseMachine({len(self.memories)} memories; {kinds})"
        )


class _HealthyView:
    """The machine surface the planner sees after a quarantine: the
    same disk, memories, and residents, minus the dead devices."""

    def __init__(self, machine: SystolicDatabaseMachine, devices) -> None:
        self.disk = machine.disk
        self.element_bits = machine.element_bits
        self.devices = devices
        self.memories = machine.memories
        self._resident = machine._resident
