"""The integrated systolic database machine of Fig 9-1.

Memories on one side of a crossbar switch, systolic devices (plus the
host CPU) on the other, with a disk feeding the memories: "Initially,
the relevant relations are read from disks into memories.  Then the
crossbar switch is configured so that the relevant memories are
connected to the systolic array that will perform the first operation
... The output of the array is pipelined back into another memory.
This is repeated for each relational operation in the transaction.  Due
to the crossbar structure, several operations may be run concurrently."

:class:`SystolicDatabaseMachine` executes query plans exactly that way
and returns a timed :class:`~repro.machine.scheduler.ExecutionReport`.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.arrays.decomposition import ArrayCapacity
from repro.errors import CapacityError, PlanError
from repro.machine.crossbar import CrossbarSwitch
from repro.machine.device import CpuDevice, SystolicDevice
from repro.machine.disk import MachineDisk
from repro.machine.memory import MemoryModule, relation_bytes
from repro.machine.plan import (
    DEVICE_COMPARISON,
    DEVICE_DIVISION,
    DEVICE_JOIN,
    Base,
    PlanNode,
    Select,
    walk,
)
from repro.machine.scheduler import DeviceTimeline, ExecutionReport, ScheduledStep
from repro.perf.technology import PAPER_CONSERVATIVE, TechnologyModel
from repro.relational.relation import Relation

__all__ = ["SystolicDatabaseMachine"]

#: One device of each systolic kind — the literal Fig 9-1 configuration
#: ("Intersect", "Join", plus the division array of §7).
DEFAULT_DEVICES = (
    (DEVICE_COMPARISON, 1),
    (DEVICE_JOIN, 1),
    (DEVICE_DIVISION, 1),
)


class SystolicDatabaseMachine:
    """Fig 9-1: disk + memories + crossbar + systolic devices + CPU."""

    def __init__(
        self,
        memories: int = 4,
        devices: Sequence[tuple[str, int]] = DEFAULT_DEVICES,
        capacity: ArrayCapacity = ArrayCapacity(max_rows=63, max_cols=8),
        technology: TechnologyModel = PAPER_CONSERVATIVE,
        disk: Optional[MachineDisk] = None,
        memory_bytes: int = 4 * 1024 * 1024,
        element_bits: int = 32,
        backend=None,
    ) -> None:
        if memories < 2:
            raise CapacityError(
                "the machine needs at least two memories (§9: output is "
                "pipelined back into *another* memory)"
            )
        self.element_bits = element_bits
        self.disk = disk if disk is not None else MachineDisk(
            element_bits=element_bits
        )
        self.memories = [
            MemoryModule(f"mem{m}", capacity_bytes=memory_bytes)
            for m in range(memories)
        ]
        self.devices: list[SystolicDevice | CpuDevice] = []
        for kind, count in devices:
            for index in range(count):
                self.devices.append(
                    SystolicDevice(
                        f"{kind}{index}", kind,
                        capacity=capacity, technology=technology,
                        backend=backend,
                    )
                )
        self.devices.append(CpuDevice("cpu"))
        self.crossbar = CrossbarSwitch(
            [m.name for m in self.memories],
            [d.name for d in self.devices] + ["disk"],
        )
        self._step_counter = itertools.count()
        #: relations already resident in memories (ready at time 0):
        #: name -> (key, relation, ready, memory name)
        self._resident: dict[str, tuple[str, Relation, float, str]] = {}

    # -- catalog -------------------------------------------------------------

    def store(self, name: str, relation: Relation) -> None:
        """Place a base relation on the machine's disk."""
        self.disk.store(name, relation)

    def preload(self, name: str, relation: Relation) -> None:
        """Place a relation directly in a memory module, ready at time 0.

        §9's memories hold results between operations and transactions
        ("the final results are eventually returned to the disk ...
        from the memory in which they reside"); a preloaded relation
        models exactly that — a prior transaction's output still
        resident, needing no disk read.
        """
        if name in self._resident:
            raise PlanError(f"relation {name!r} is already resident")
        nbytes = relation_bytes(relation, self.element_bits)
        # Spread residents across modules (emptiest first) so their
        # ports don't become a single serialization point.
        candidates = [m for m in self.memories if m.free_bytes >= nbytes]
        if not candidates:
            raise CapacityError(
                f"no memory module can absorb {nbytes} bytes for {name!r}"
            )
        memory = min(candidates, key=lambda m: (m.used_bytes, m.name))
        key = f"resident:{name}"
        memory.store(key, relation, nbytes)
        self._resident[name] = (key, relation, 0.0, memory.name)

    # -- execution -------------------------------------------------------------

    def run(self, plan: PlanNode) -> tuple[Relation, ExecutionReport]:
        """Execute one plan; returns (result, timed report)."""
        results, report = self.run_many([plan])
        return results[0], report

    def run_many(
        self,
        plans: Sequence[PlanNode],
        arrivals: Optional[Sequence[float]] = None,
    ) -> tuple[list[Relation], ExecutionReport]:
        """Execute a transaction of several plans on one shared timeline.

        Plans are independent unless they share sub-plan objects, in
        which case the shared node is computed once.  ``arrivals`` are
        optional per-plan release times (seconds): nothing belonging to
        a plan starts before its arrival — §9's "set of transactions"
        submitted over time.
        """
        if not plans:
            raise PlanError("a transaction needs at least one plan")
        if arrivals is None:
            arrivals = [0.0] * len(plans)
        if len(arrivals) != len(plans):
            raise PlanError(
                f"need one arrival per plan: {len(arrivals)} arrivals, "
                f"{len(plans)} plans"
            )
        if any(t < 0 for t in arrivals):
            raise PlanError("arrival times must be non-negative")
        report = ExecutionReport()
        timeline = DeviceTimeline(self.devices)
        disk_free = 0.0
        #: node id -> (result key, relation, ready time, memory name)
        produced: dict[int, tuple[str, Relation, float, str]] = {}

        order: list[PlanNode] = []
        release: dict[int, float] = {}
        seen: set[int] = set()
        for plan, arrival in sorted(
            zip(plans, arrivals), key=lambda pair: pair[1]
        ):
            for node in walk(plan):
                if id(node) not in seen:
                    seen.add(id(node))
                    order.append(node)
                    release[id(node)] = arrival

        # §9/[8]: simple selections over a base relation ride the disk
        # read for free on a logic-per-track disk.  Only fuse when the
        # base relation is not shared with any other operation.
        parent_count: dict[int, int] = {}
        for node in order:
            for child in node.children:
                parent_count[id(child)] = parent_count.get(id(child), 0) + 1
        fused: dict[int, Select] = {}
        if self.disk.logic_per_track:
            for node in order:
                if (
                    isinstance(node, Select)
                    and isinstance(node.child, Base)
                    and parent_count.get(id(node.child), 0) == 1
                ):
                    fused[id(node.child)] = node

        #: base-relation name -> produced record, so two plans naming the
        #: same relation share one disk read.
        loaded_bases: dict[str, tuple[str, Relation, float, str]] = {}
        for node in order:
            if id(node) in produced:
                continue
            if isinstance(node, Base):
                if node.name in self._resident:
                    produced[id(node)] = self._resident[node.name]
                    continue
                select = fused.get(id(node))
                if select is None and node.name in loaded_bases:
                    produced[id(node)] = loaded_bases[node.name]
                    continue
                released = max(disk_free, release[id(node)])
                if select is not None:
                    disk_free = self._load_base(
                        node, produced, report, released,
                        selection=(select.column, select.op, select.value),
                        fused_as=select,
                    )
                else:
                    disk_free = self._load_base(
                        node, produced, report, released
                    )
                    loaded_bases[node.name] = produced[id(node)]
            else:
                self._execute_op(node, produced, report, timeline,
                                 release=release[id(node)])
        final = [produced[id(plan)][1] for plan in plans]
        return final, report

    # -- internals ------------------------------------------------------------

    def _new_key(self, node: PlanNode) -> str:
        return f"n{next(self._step_counter)}:{node.describe()}"

    def _choose_memory(
        self, nbytes: int, avoid: set[str], ready: float, duration: float
    ) -> tuple[MemoryModule, float]:
        """A memory with space and the earliest free port window."""
        best: Optional[tuple[float, int, MemoryModule]] = None
        for index, memory in enumerate(self.memories):
            if memory.name in avoid or memory.free_bytes < nbytes:
                continue
            start = self.crossbar.earliest_window(memory.name, ready, duration)
            candidate = (start, index, memory)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        if best is None:
            raise CapacityError(
                f"no memory module can absorb {nbytes} bytes "
                f"(avoiding {sorted(avoid)})"
            )
        return best[2], best[0]

    def _load_base(
        self,
        node: Base,
        produced: dict[int, tuple[str, Relation, float, str]],
        report: ExecutionReport,
        disk_free: float,
        selection: Optional[tuple] = None,
        fused_as: Optional[PlanNode] = None,
    ) -> float:
        relation, read_seconds = self.disk.read(node.name, selection=selection)
        nbytes = relation_bytes(relation, self.element_bits)
        memory, start = self._choose_memory(
            nbytes, avoid=set(), ready=disk_free, duration=read_seconds
        )
        end = start + read_seconds
        key = self._new_key(fused_as if fused_as is not None else node)
        memory.store(key, relation, nbytes)
        self.crossbar.establish(memory.name, "disk", start, end)
        label = node.name if fused_as is None else fused_as.describe()
        report.steps.append(ScheduledStep(
            label=f"load {label}",
            device="disk",
            start=start, end=end,
            output_key=key, output_memory=memory.name,
            nbytes_out=nbytes,
        ))
        target = fused_as if fused_as is not None else node
        produced[id(target)] = (key, relation, end, memory.name)
        if fused_as is not None:
            produced[id(node)] = produced[id(target)]
        return end

    def _execute_op(
        self,
        node: PlanNode,
        produced: dict[int, tuple[str, Relation, float, str]],
        report: ExecutionReport,
        timeline: DeviceTimeline,
        release: float = 0.0,
    ) -> None:
        inputs = []
        input_keys = []
        input_memories = []
        ready = release
        for child in node.children:
            key, relation, child_ready, memory_name = produced[id(child)]
            inputs.append(relation)
            input_keys.append(key)
            input_memories.append(memory_name)
            ready = max(ready, child_ready)

        device, device_ready = timeline.pick(node.device_kind, ready)
        run = device.execute(node, inputs)
        nbytes_out = relation_bytes(run.relation, self.element_bits)

        # An operation runs at the pace of its slowest stream: any input
        # being read out of its memory, or the result being written back
        # (§6.2's warning — a degenerate join's output can dwarf its
        # inputs — shows up here as output-streaming time).
        stream_seconds = [
            memory.transfer_seconds(memory.size_of(key))
            for key, memory in (
                (k, self._memory(m)) for k, m in zip(input_keys, input_memories)
            )
        ]
        if self.memories:
            stream_seconds.append(
                self.memories[0].transfer_seconds(nbytes_out)
            )
        duration = max([run.seconds] + stream_seconds)

        # Find a start time at which every input port is free for the
        # whole window, the device is free, and an output memory exists.
        start = device_ready
        for _ in range(64):  # converges in a couple of rounds in practice
            adjusted = start
            for memory_name in set(input_memories):
                adjusted = max(
                    adjusted,
                    self.crossbar.earliest_window(memory_name, adjusted, duration),
                )
            out_memory, out_start = self._choose_memory(
                nbytes_out,
                avoid=set(input_memories),
                ready=adjusted,
                duration=duration,
            )
            adjusted = max(adjusted, out_start)
            if adjusted == start:
                break
            start = adjusted
        end = start + duration

        key = self._new_key(node)
        out_memory.store(key, run.relation, nbytes_out)
        for memory_name in set(input_memories):
            self.crossbar.establish(memory_name, device.name, start, end)
        if out_memory.name not in set(input_memories):
            self.crossbar.establish(out_memory.name, device.name, start, end)
        timeline.occupy(device.name, end)
        report.steps.append(ScheduledStep(
            label=node.describe(),
            device=device.name,
            start=start, end=end,
            output_key=key, output_memory=out_memory.name,
            input_keys=tuple(input_keys),
            pulses=run.pulses, block_runs=run.block_runs,
            nbytes_out=nbytes_out,
        ))
        produced[id(node)] = (key, run.relation, end, out_memory.name)

    def _memory(self, name: str) -> MemoryModule:
        for memory in self.memories:
            if memory.name == name:
                return memory
        raise PlanError(f"unknown memory {name!r}")

    def __repr__(self) -> str:
        kinds = ", ".join(d.name for d in self.devices)
        return (
            f"SystolicDatabaseMachine({len(self.memories)} memories; {kinds})"
        )
