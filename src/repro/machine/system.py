"""The integrated systolic database machine of Fig 9-1.

Memories on one side of a crossbar switch, systolic devices (plus the
host CPU) on the other, with a disk feeding the memories: "Initially,
the relevant relations are read from disks into memories.  Then the
crossbar switch is configured so that the relevant memories are
connected to the systolic array that will perform the first operation
... The output of the array is pipelined back into another memory.
This is repeated for each relational operation in the transaction.  Due
to the crossbar structure, several operations may be run concurrently."

:class:`SystolicDatabaseMachine` executes query plans exactly that way
and returns a timed :class:`~repro.machine.scheduler.ExecutionReport`.

Logical plans are first lowered into a
:class:`~repro.machine.physical.PhysicalPlan` (device assignments by
the :mod:`repro.perf.cost` model, §8 block decomposition, §9 chain
fusion) — :meth:`SystolicDatabaseMachine.compile` exposes the lowering,
``run``/``run_many`` apply it implicitly.  Repeated ``compile`` calls
for structurally identical transactions hit an LRU plan cache, and
execution itself is split into a *compute phase* (pure device runs and
disk reads, overlapped on host threads by
:class:`~repro.machine.scheduler.HostExecutor`) and a sequential
*replay phase* that does all the timing and memory bookkeeping — so a
parallel run is bit-identical to a serial one.
"""

from __future__ import annotations

import itertools
import os
from collections import OrderedDict
from typing import Any, Optional, Sequence

from repro import obs
from repro.arrays.decomposition import ArrayCapacity
from repro.errors import CapacityError, PlanError
from repro.obs import metrics
from repro.machine.crossbar import CrossbarSwitch
from repro.machine.device import CpuDevice, SystolicDevice
from repro.machine.disk import MachineDisk
from repro.machine.memory import MemoryModule, relation_bytes
from repro.machine.physical import (
    OP_LOAD,
    OP_RESIDENT,
    PhysicalOp,
    PhysicalPlan,
    PhysicalPlanner,
    actual_cost,
    plan_fingerprint,
)
from repro.machine.pipelining import StageCost
from repro.machine.plan import (
    DEVICE_COMPARISON,
    DEVICE_DIVISION,
    DEVICE_JOIN,
    PlanNode,
)
from repro.machine.scheduler import (
    DeviceRoster,
    ExecutionReport,
    HostExecutor,
    ScheduledStep,
)
from repro.perf.technology import PAPER_CONSERVATIVE, TechnologyModel
from repro.relational.relation import Relation

__all__ = ["SystolicDatabaseMachine"]

#: One device of each systolic kind — the literal Fig 9-1 configuration
#: ("Intersect", "Join", plus the division array of §7).
DEFAULT_DEVICES = (
    (DEVICE_COMPARISON, 1),
    (DEVICE_JOIN, 1),
    (DEVICE_DIVISION, 1),
)


class SystolicDatabaseMachine:
    """Fig 9-1: disk + memories + crossbar + systolic devices + CPU."""

    def __init__(
        self,
        memories: int = 4,
        devices: Sequence[tuple[str, int]] = DEFAULT_DEVICES,
        capacity: ArrayCapacity = ArrayCapacity(max_rows=63, max_cols=8),
        technology: TechnologyModel = PAPER_CONSERVATIVE,
        disk: Optional[MachineDisk] = None,
        memory_bytes: int = 4 * 1024 * 1024,
        element_bits: int = 32,
        backend=None,
        host_workers: Optional[int] = None,
        plan_cache_size: int = 64,
    ) -> None:
        if memories < 2:
            raise CapacityError(
                "the machine needs at least two memories (§9: output is "
                "pipelined back into *another* memory)"
            )
        self.element_bits = element_bits
        self.disk = disk if disk is not None else MachineDisk(
            element_bits=element_bits
        )
        self.memories = [
            MemoryModule(f"mem{m}", capacity_bytes=memory_bytes)
            for m in range(memories)
        ]
        self.devices: list[SystolicDevice | CpuDevice] = []
        kind_index: dict[str, itertools.count] = {}
        for spec in devices:
            # (kind, count) or (kind, count, ArrayCapacity) — the third
            # element gives one roster heterogeneous array sizes, which
            # is what makes cost-aware device choice interesting.
            kind, count = spec[0], spec[1]
            device_capacity = spec[2] if len(spec) > 2 else capacity
            indices = kind_index.setdefault(kind, itertools.count())
            for _ in range(count):
                self.devices.append(
                    SystolicDevice(
                        f"{kind}{next(indices)}", kind,
                        capacity=device_capacity, technology=technology,
                        backend=backend,
                    )
                )
        self.devices.append(CpuDevice("cpu"))
        self.crossbar = CrossbarSwitch(
            [m.name for m in self.memories],
            [d.name for d in self.devices] + ["disk"],
        )
        self._step_counter = itertools.count()
        #: relations already resident in memories (ready at time 0):
        #: name -> (key, relation, ready, memory name)
        self._resident: dict[str, tuple[str, Relation, float, str]] = {}
        #: host threads for the compute phase (None → HostExecutor default)
        self.host_workers = host_workers
        if plan_cache_size < 0:
            raise PlanError(
                f"plan_cache_size must be >= 0, got {plan_cache_size}"
            )
        self._plan_cache_size = plan_cache_size
        self._plan_cache: OrderedDict[tuple, PhysicalPlan] = OrderedDict()
        self._plan_cache_hits = 0
        self._plan_cache_misses = 0
        #: bumped whenever the catalog changes (store/preload) — part of
        #: the plan-cache key, so stale physical plans never resurface.
        self._catalog_version = 0
        self._roster_fingerprint = tuple(
            (
                device.name,
                device.kind,
                getattr(getattr(device, "capacity", None), "max_rows", None),
                getattr(getattr(device, "capacity", None), "max_cols", None),
            )
            for device in self.devices
        )

    # -- catalog -------------------------------------------------------------

    def store(self, name: str, relation: Relation) -> None:
        """Place a base relation on the machine's disk."""
        self.disk.store(name, relation)
        self._catalog_version += 1

    def preload(self, name: str, relation: Relation) -> None:
        """Place a relation directly in a memory module, ready at time 0.

        §9's memories hold results between operations and transactions
        ("the final results are eventually returned to the disk ...
        from the memory in which they reside"); a preloaded relation
        models exactly that — a prior transaction's output still
        resident, needing no disk read.
        """
        if name in self._resident:
            raise PlanError(f"relation {name!r} is already resident")
        nbytes = relation_bytes(relation, self.element_bits)
        # Spread residents across modules (emptiest first) so their
        # ports don't become a single serialization point.
        candidates = [m for m in self.memories if m.free_bytes >= nbytes]
        if not candidates:
            raise CapacityError(
                f"no memory module can absorb {nbytes} bytes for {name!r}"
            )
        memory = min(candidates, key=lambda m: (m.used_bytes, m.name))
        key = f"resident:{name}"
        memory.store(key, relation, nbytes)
        self._resident[name] = (key, relation, 0.0, memory.name)
        self._catalog_version += 1

    # -- compilation ------------------------------------------------------------

    def compile(
        self,
        plans: Sequence[PlanNode] | PlanNode,
        arrivals: Optional[Sequence[float]] = None,
        pipeline: bool = True,
        use_cache: bool = True,
    ) -> PhysicalPlan:
        """Lower logical plans into a :class:`PhysicalPlan` for this machine.

        Pure — nothing is loaded, stored, or timed on the machine
        itself, so a plan can be compiled, inspected (``explain()``),
        and then handed to :meth:`run_physical`.  With
        ``pipeline=False`` no chains are fused and execution is
        store-and-forward, §9's simplest reading.

        Structurally identical transactions (same plan shape,
        parameters, *and* subtree sharing — see
        :func:`~repro.machine.physical.plan_fingerprint`) hit an LRU
        cache instead of re-running the planner.  The key also covers
        the arrival schedule, the pipeline flag, the catalog version
        (bumped by :meth:`store`/:meth:`preload`), and the device
        roster, so a cached plan is only reused when the planner would
        provably reproduce it.  ``use_cache=False`` bypasses the cache
        for a single call.
        """
        if isinstance(plans, PlanNode):
            plans = [plans]
        metrics.inc("machine.compile.calls")
        with obs.span(
            "machine.compile", plans=len(plans), pipeline=bool(pipeline),
        ) as sp:
            if not use_cache or self._plan_cache_size == 0:
                physical = PhysicalPlanner(self).compile(
                    plans, arrivals, pipeline=pipeline
                )
                sp.set(cached=False, ops=len(physical.ops))
                return physical
            key = (
                plan_fingerprint(plans),
                tuple(arrivals) if arrivals is not None else None,
                bool(pipeline),
                self._catalog_version,
                self._roster_fingerprint,
            )
            cached = self._plan_cache.get(key)
            if cached is not None:
                self._plan_cache.move_to_end(key)
                self._plan_cache_hits += 1
                metrics.inc("machine.plan_cache.hits")
                metrics.set_gauge(
                    "machine.plan_cache.size", len(self._plan_cache)
                )
                sp.set(cached=True, ops=len(cached.ops))
                return cached
            self._plan_cache_misses += 1
            metrics.inc("machine.plan_cache.misses")
            physical = PhysicalPlanner(self).compile(
                plans, arrivals, pipeline=pipeline
            )
            self._plan_cache[key] = physical
            while len(self._plan_cache) > self._plan_cache_size:
                self._plan_cache.popitem(last=False)
            metrics.set_gauge(
                "machine.plan_cache.size", len(self._plan_cache)
            )
            sp.set(cached=False, ops=len(physical.ops))
            return physical

    def plan_cache_info(self) -> dict[str, int]:
        """Hit/miss counters and occupancy of the compile cache."""
        return {
            "hits": self._plan_cache_hits,
            "misses": self._plan_cache_misses,
            "size": len(self._plan_cache),
            "maxsize": self._plan_cache_size,
        }

    # -- execution -------------------------------------------------------------

    def run(
        self,
        plan: PlanNode,
        pipeline: bool = True,
        parallel: Optional[bool] = None,
    ) -> tuple[Relation, ExecutionReport]:
        """Execute one plan; returns (result, timed report)."""
        results, report = self.run_many(
            [plan], pipeline=pipeline, parallel=parallel
        )
        return results[0], report

    def run_many(
        self,
        plans: Sequence[PlanNode],
        arrivals: Optional[Sequence[float]] = None,
        pipeline: bool = True,
        parallel: Optional[bool] = None,
    ) -> tuple[list[Relation], ExecutionReport]:
        """Execute a transaction of several plans on one shared timeline.

        Plans are independent unless they share sub-plan objects, in
        which case the shared node is computed once.  ``arrivals`` are
        optional per-plan release times (seconds): nothing belonging to
        a plan starts before its arrival — §9's "set of transactions"
        submitted over time.

        Each logical plan is lowered through :meth:`compile` first;
        producer→consumer systolic stages fuse into pipelined chains
        unless ``pipeline=False``.  Independent operations' host-side
        compute overlaps on threads unless ``parallel=False`` (or the
        ``REPRO_MACHINE_PARALLEL`` environment variable disables it);
        results and reports are identical either way.
        """
        physical = self.compile(plans, arrivals, pipeline=pipeline)
        return self.run_physical(physical, parallel=parallel)

    def run_physical(
        self,
        physical: PhysicalPlan,
        parallel: Optional[bool] = None,
    ) -> tuple[list[Relation], ExecutionReport]:
        """Execute an already-compiled physical plan.

        Returns one result per original plan (``physical.outputs``
        order) and the executed timeline.  The report is the ground
        truth; ``physical.predicted_makespan`` is the planner's
        port-blind forecast of the same schedule.

        Execution happens in two phases.  The **compute phase** resolves
        every op's data result — disk reads and device runs, which are
        pure functions of their inputs — with independent ops overlapped
        on host threads (:class:`HostExecutor`).  The **replay phase**
        then walks the plan in topological order doing all the
        *simulated* bookkeeping (port windows, memory placement, the
        timed report) sequentially, so the timeline is deterministic and
        bit-identical whether the compute phase ran parallel or serial.
        """
        with obs.span("machine.run", ops=len(physical.ops)) as run_span:
            with obs.span("machine.compute_phase"):
                runs, task_spans = self._compute_phase(
                    physical, self._resolve_parallel(parallel)
                )
            report = ExecutionReport()
            roster = DeviceRoster(self.devices)
            disk_free = 0.0
            #: op id -> (result key, relation, ready time, memory name)
            produced: dict[int, tuple[str, Relation, float, str]] = {}
            with obs.span("machine.replay"):
                for op in physical.ops:
                    if op.op_id in produced:
                        continue
                    if op.kind == OP_RESIDENT:
                        with obs.span(
                            "machine.op", op=op.label, device="resident",
                            kind=op.kind,
                        ):
                            produced[op.op_id] = self._resident[op.node.name]
                        continue
                    if op.kind == OP_LOAD:
                        disk_free = self._run_load(
                            op, produced, report, disk_free,
                            runs[op.op_id], task_spans.get(op.op_id),
                        )
                        continue
                    chain = physical.chain_of(op)
                    if chain is not None and len(chain) > 1:
                        members = [physical[i] for i in chain.op_ids]
                        if members[-1].op_id != op.op_id:
                            # Chains execute as a unit once the machine
                            # reaches the last member: by then every
                            # external input of every stage has been
                            # produced (topological order).
                            continue
                        self._run_chain(
                            members, produced, report, roster, runs,
                            task_spans,
                        )
                    else:
                        self._run_singleton(
                            op, produced, report, roster, runs, task_spans
                        )
            results = [produced[op_id][1] for op_id in physical.outputs]
            run_span.set(makespan_ms=report.makespan * 1e3)
        return results, report

    # -- compute phase ---------------------------------------------------------

    @staticmethod
    def _resolve_parallel(parallel: Optional[bool]) -> bool:
        if parallel is not None:
            return bool(parallel)
        env = os.environ.get("REPRO_MACHINE_PARALLEL", "").strip().lower()
        return env not in ("0", "false", "off")

    def _compute_phase(
        self, physical: PhysicalPlan, parallel: bool
    ) -> tuple[dict[int, Any], dict[int, Any]]:
        """Resolve every op's data result, overlapping independent ops.

        Returns ``({op_id: result}, {op_id: span})`` where a load's
        result is the ``(relation, read_seconds)`` pair from
        :meth:`MachineDisk.read`, a compute op's is its
        :class:`~repro.machine.device.DeviceRun`, and a resident's is
        the relation itself.  Chain members are computed here exactly
        like singletons — a member's inputs are its producers'
        relations either way — so the replay phase can fall back from a
        fused chain to store-and-forward without recomputing anything.

        When tracing is active, each thunk runs under a **detached**
        ``host.task`` span (returned in the second dict); the replay
        phase grafts those subtrees under the deterministic per-op
        spans, so the recorded tree structure is identical whether the
        compute phase ran parallel or serial.
        """

        def relation_of(value: Any) -> Relation:
            if isinstance(value, Relation):
                return value  # resident
            if isinstance(value, tuple):
                return value[0]  # disk load: (relation, seconds)
            return value.relation  # DeviceRun

        seed: dict[int, Any] = {}
        thunks: dict[int, tuple[tuple[int, ...], Any]] = {}
        for op in physical.ops:
            if op.op_id in seed or op.op_id in thunks:
                continue
            if op.kind == OP_RESIDENT:
                seed[op.op_id] = self._resident[op.node.name][1]
            elif op.kind == OP_LOAD:
                def load(resolved, op=op):
                    return self.disk.read(op.base_name, selection=op.selection)

                thunks[op.op_id] = ((), load)
            else:
                device = self._device(op.device)
                deps = tuple(op.inputs)

                def execute(resolved, node=op.node, device=device, deps=deps):
                    inputs = [relation_of(resolved[d]) for d in deps]
                    return device.execute(node, inputs)

                thunks[op.op_id] = (deps, execute)
        task_spans: dict[int, Any] = {}
        if obs.enabled():
            labels = {op.op_id: op.label for op in physical.ops}
            for op_id, (deps, fn) in list(thunks.items()):
                thunks[op_id] = (
                    deps,
                    self._traced_thunk(op_id, labels[op_id], fn, task_spans),
                )
        workers = self.host_workers if parallel else 1
        results = HostExecutor(max_workers=workers).run(thunks, seed=seed)
        return results, task_spans

    @staticmethod
    def _traced_thunk(
        op_id: int, label: str, fn: Any, task_spans: dict[int, Any]
    ) -> Any:
        """Wrap a compute thunk in a detached ``host.task`` span.

        The span subtree is free-standing (worker threads have no
        deterministic ancestor) and lands in ``task_spans`` for the
        replay phase to adopt.  Distinct keys make the dict writes
        thread-safe.
        """

        def traced(resolved: dict[int, Any]) -> Any:
            with obs.detached("host.task", op=label) as sp:
                result = fn(resolved)
            task_spans[op_id] = sp
            return result

        return traced

    # -- internals ------------------------------------------------------------

    def _new_key(self, node: PlanNode) -> str:
        return f"n{next(self._step_counter)}:{node.describe()}"

    def _device(self, name: str) -> SystolicDevice | CpuDevice:
        for device in self.devices:
            if device.name == name:
                return device
        raise PlanError(f"unknown device {name!r}")

    def _choose_memory(
        self, nbytes: int, avoid: set[str], ready: float, duration: float
    ) -> tuple[MemoryModule, float]:
        """A memory with space and the earliest free port window."""
        best: Optional[tuple[float, int, MemoryModule]] = None
        for index, memory in enumerate(self.memories):
            if memory.name in avoid or memory.free_bytes < nbytes:
                continue
            start = self.crossbar.earliest_window(memory.name, ready, duration)
            candidate = (start, index, memory)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        if best is None:
            raise CapacityError(
                f"no memory module can absorb {nbytes} bytes "
                f"(avoiding {sorted(avoid)})"
            )
        return best[2], best[0]

    def _run_load(
        self,
        op: PhysicalOp,
        produced: dict[int, tuple[str, Relation, float, str]],
        report: ExecutionReport,
        disk_free: float,
        loaded: tuple[Relation, float],
        task_span: Any = None,
    ) -> float:
        """One serial disk read (selection possibly fused on-track)."""
        with obs.span(
            "machine.op", op=op.label, device="disk", kind=op.kind,
        ) as sp:
            obs.adopt(task_span)
            released = max(disk_free, op.release)
            relation, read_seconds = loaded
            nbytes = relation_bytes(relation, self.element_bits)
            memory, start = self._choose_memory(
                nbytes, avoid=set(), ready=released, duration=read_seconds
            )
            end = start + read_seconds
            key = self._new_key(
                op.fused_select if op.fused_select is not None else op.node
            )
            memory.store(key, relation, nbytes)
            self.crossbar.establish(memory.name, "disk", start, end)
            report.steps.append(ScheduledStep(
                label=op.label,
                device="disk",
                start=start, end=end,
                output_key=key, output_memory=memory.name,
                nbytes_out=nbytes,
            ))
            produced[op.op_id] = (key, relation, end, memory.name)
            sp.set(
                rows_out=len(relation), nbytes_out=nbytes,
                memory=memory.name, sim_start=start, sim_end=end,
            )
        metrics.inc("machine.ops.executed")
        metrics.observe("machine.op.sim_seconds", end - start)
        return end

    def _run_singleton(
        self,
        op: PhysicalOp,
        produced: dict[int, tuple[str, Relation, float, str]],
        report: ExecutionReport,
        roster: DeviceRoster,
        runs: dict[int, Any],
        task_spans: Optional[dict[int, Any]] = None,
    ) -> None:
        """One store-and-forward operation on its assigned device."""
        with obs.span(
            "machine.op", op=op.label, device=op.device, kind=op.kind,
        ) as sp:
            if task_spans is not None:
                obs.adopt(task_spans.get(op.op_id))
            start, end = self._commit_singleton(
                op, produced, report, roster, runs, sp
            )
        metrics.inc("machine.ops.executed")
        metrics.observe("machine.op.sim_seconds", end - start)

    def _commit_singleton(
        self,
        op: PhysicalOp,
        produced: dict[int, tuple[str, Relation, float, str]],
        report: ExecutionReport,
        roster: DeviceRoster,
        runs: dict[int, Any],
        sp: Any,
    ) -> tuple[float, float]:
        input_keys = []
        input_memories = []
        ready = op.release
        for input_id in op.inputs:
            key, _, child_ready, memory_name = produced[input_id]
            input_keys.append(key)
            input_memories.append(memory_name)
            ready = max(ready, child_ready)

        device = self._device(op.device)
        device_ready = max(ready, roster.free_at(device.name))
        run = runs[op.op_id]
        nbytes_out = relation_bytes(run.relation, self.element_bits)

        # An operation runs at the pace of its slowest stream: any input
        # being read out of its memory, or the result being written back
        # (§6.2's warning — a degenerate join's output can dwarf its
        # inputs — shows up here as output-streaming time).
        stream_seconds = [
            memory.transfer_seconds(memory.size_of(key))
            for key, memory in (
                (k, self._memory(m)) for k, m in zip(input_keys, input_memories)
            )
        ]
        if self.memories:
            stream_seconds.append(
                self.memories[0].transfer_seconds(nbytes_out)
            )
        duration = max([run.seconds] + stream_seconds)

        # Find a start time at which every input port is free for the
        # whole window, the device is free, and an output memory exists.
        start = device_ready
        for _ in range(64):  # converges in a couple of rounds in practice
            adjusted = start
            for memory_name in set(input_memories):
                adjusted = max(
                    adjusted,
                    self.crossbar.earliest_window(memory_name, adjusted, duration),
                )
            out_memory, out_start = self._choose_memory(
                nbytes_out,
                avoid=set(input_memories),
                ready=adjusted,
                duration=duration,
            )
            adjusted = max(adjusted, out_start)
            if adjusted == start:
                break
            start = adjusted
        end = start + duration

        key = self._new_key(op.node)
        out_memory.store(key, run.relation, nbytes_out)
        for memory_name in set(input_memories):
            self.crossbar.establish(memory_name, device.name, start, end)
        if out_memory.name not in set(input_memories):
            self.crossbar.establish(out_memory.name, device.name, start, end)
        roster.occupy(device.name, end)
        report.steps.append(ScheduledStep(
            label=op.label,
            device=device.name,
            start=start, end=end,
            output_key=key, output_memory=out_memory.name,
            input_keys=tuple(input_keys),
            pulses=run.pulses, block_runs=run.block_runs,
            nbytes_out=nbytes_out,
        ))
        produced[op.op_id] = (key, run.relation, end, out_memory.name)
        sp.set(
            pulses=run.pulses, blocks=run.block_runs,
            rows_out=len(run.relation), nbytes_out=nbytes_out,
            memory=out_memory.name, sim_start=start, sim_end=end,
        )
        return start, end

    def _run_chain(
        self,
        members: list[PhysicalOp],
        produced: dict[int, tuple[str, Relation, float, str]],
        report: ExecutionReport,
        roster: DeviceRoster,
        precomputed: dict[int, Any],
        task_spans: Optional[dict[int, Any]] = None,
    ) -> None:
        """Execute a fused chain under the Σ fill + max stream law (§9).

        Stage *k* starts once the k−1 upstream fills have elapsed and
        holds its device until its last result emerges; intermediate
        results stream device→switch→device, so the consumer takes no
        extra port on the producer's output memory.
        """
        internal = {m.op_id for m in members}

        # All stage windows overlap, so a memory port can serve only one
        # stage device for the chain's whole span.  If two stages need
        # externals out of the same memory, the ports cannot be
        # disentangled — fall back to store-and-forward for this chain.
        device_of_port: dict[str, str] = {}
        for member in members:
            for input_id in member.inputs:
                if input_id in internal:
                    continue
                memory_name = produced[input_id][3]
                claimed = device_of_port.setdefault(memory_name, member.device)
                if claimed != member.device:
                    for fallback in members:
                        self._run_singleton(
                            fallback, produced, report, roster, precomputed,
                            task_spans,
                        )
                    return

        # Gather every stage's (precomputed) result and its actual fill
        # latency.
        runs = []
        fills = []
        externals: list[list[tuple[str, str]]] = []  # (key, memory) pairs
        chain_local: dict[int, Relation] = {}
        for member in members:
            inputs = []
            external = []
            for input_id in member.inputs:
                if input_id in internal:
                    inputs.append(chain_local[input_id])
                else:
                    key, relation, _, memory_name = produced[input_id]
                    inputs.append(relation)
                    external.append((key, memory_name))
            device = self._device(member.device)
            run = precomputed[member.op_id]
            chain_local[member.op_id] = run.relation
            cost = actual_cost(
                member.node, inputs,
                device.capacity.max_rows, device.capacity.max_cols,
            )
            fills.append(device.technology.pulses_to_seconds(cost.fill_pulses))
            runs.append(run)
            externals.append(external)

        # Per-stage stand-alone duration → (fill, stream) split.
        stages = []
        out_bytes = []
        for member, run, external, fill in zip(members, runs, externals, fills):
            nbytes_out = relation_bytes(run.relation, self.element_bits)
            out_bytes.append(nbytes_out)
            streams = [
                self._memory(memory_name).transfer_seconds(
                    self._memory(memory_name).size_of(key)
                )
                for key, memory_name in external
            ]
            if self.memories:
                streams.append(self.memories[0].transfer_seconds(nbytes_out))
            total = max([run.seconds] + streams)
            fill = min(fill, total)
            stages.append(StageCost(
                name=member.label, fill=fill, stream=total - fill
            ))

        # Stage k's window relative to the chain start: the prefix form
        # of the pipeline law — the last stage ends at Σ fill + max
        # stream, analyze_chain's pipelined makespan.
        offsets = PhysicalPlanner._stage_offsets(stages)

        # Each stage needs its own inputs (and release) only by the time
        # *it* starts — chain_start + lo_k — so an input arriving late to
        # a downstream stage does not hold the upstream stages back.
        start = 0.0
        for member, (lo, _) in zip(members, offsets):
            start = max(start, member.release - lo,
                        roster.free_at(member.device) - lo)
            for input_id in member.inputs:
                if input_id not in internal:
                    start = max(start, produced[input_id][2] - lo)

        # Fixed point over the chain start: every stage's external input
        # ports must be free over its window, plus one memory for the
        # tail's output.  Intermediate results never touch a memory —
        # they stream device→switch→device (§9), which is the point of
        # fusing — so the chain needs |externals| + 1 ports in total.
        all_external = {
            memory for external in externals for _, memory in external
        }
        tail_index = len(members) - 1
        tail_lo, tail_hi = offsets[tail_index]
        out_memory: Optional[MemoryModule] = None
        try:
            for _ in range(64):
                adjusted = start
                for (lo, hi), external in zip(offsets, externals):
                    duration = hi - lo
                    for memory_name in {memory for _, memory in external}:
                        adjusted = max(
                            adjusted,
                            self.crossbar.earliest_window(
                                memory_name, adjusted + lo, duration
                            ) - lo,
                        )
                out_memory, out_start = self._choose_memory(
                    out_bytes[tail_index], avoid=all_external,
                    ready=adjusted + tail_lo, duration=tail_hi - tail_lo,
                )
                adjusted = max(adjusted, out_start - tail_lo)
                if adjusted == start:
                    break
                start = adjusted
        except CapacityError:
            # Not enough distinct memory ports for the fused chain on
            # this machine — run its stages store-and-forward instead.
            for fallback in members:
                self._run_singleton(
                    fallback, produced, report, roster, precomputed,
                    task_spans,
                )
            return

        # Commit: claim ports, occupy devices, store the tail's output.
        metrics.inc("machine.chains.executed")
        with obs.span(
            "machine.chain", stages=len(members),
            chain=" | ".join(m.label for m in members),
        ) as chain_span:
            key_of: dict[int, str] = {}
            for k, (member, run, (lo, hi), external) in enumerate(
                zip(members, runs, offsets, externals)
            ):
                stage_start, stage_end = start + lo, start + hi
                with obs.span(
                    "machine.op", op=member.label, device=member.device,
                    kind=member.kind,
                ) as sp:
                    if task_spans is not None:
                        obs.adopt(task_spans.get(member.op_id))
                    key = self._new_key(member.node)
                    key_of[member.op_id] = key
                    external_memories = {memory for _, memory in external}
                    for memory_name in external_memories:
                        self.crossbar.establish(
                            memory_name, member.device, stage_start, stage_end
                        )
                    if k == tail_index:
                        memory_label = out_memory.name
                        out_memory.store(key, run.relation, out_bytes[k])
                        if out_memory.name not in external_memories:
                            self.crossbar.establish(
                                out_memory.name, member.device,
                                stage_start, stage_end,
                            )
                    else:
                        # Streamed straight into the next stage's array.
                        memory_label = f"->{members[k + 1].device}"
                    roster.occupy(member.device, stage_end)
                    input_keys = tuple(
                        key_of[i] if i in internal else produced[i][0]
                        for i in member.inputs
                    )
                    report.steps.append(ScheduledStep(
                        label=member.label,
                        device=member.device,
                        start=stage_start, end=stage_end,
                        output_key=key, output_memory=memory_label,
                        input_keys=input_keys,
                        pulses=run.pulses, block_runs=run.block_runs,
                        nbytes_out=out_bytes[k],
                    ))
                    produced[member.op_id] = (
                        key, run.relation, stage_end, memory_label
                    )
                    sp.set(
                        pulses=run.pulses, blocks=run.block_runs,
                        rows_out=len(run.relation), nbytes_out=out_bytes[k],
                        memory=memory_label,
                        sim_start=stage_start, sim_end=stage_end,
                    )
                metrics.inc("machine.ops.executed")
                metrics.observe(
                    "machine.op.sim_seconds", stage_end - stage_start
                )
            chain_span.set(
                sim_start=start + offsets[0][0], sim_end=start + tail_hi
            )

    def _memory(self, name: str) -> MemoryModule:
        for memory in self.memories:
            if memory.name == name:
                return memory
        raise PlanError(f"unknown memory {name!r}")

    def __repr__(self) -> str:
        kinds = ", ".join(d.name for d in self.devices)
        return (
            f"SystolicDatabaseMachine({len(self.memories)} memories; {kinds})"
        )
