"""Physical plans: device-assigned, block-decomposed, pipelined (§8–§9).

A logical :class:`~repro.machine.plan.PlanNode` DAG says *what* to
compute.  This module compiles it into a **PhysicalPlan** that says
*how* the Fig 9-1 machine will compute it:

* every operation carries a **device assignment**, chosen by the
  :mod:`repro.perf.cost` model (fill + stream pulses × the device's
  technology cycle time) rather than first-free — a bigger array means
  fewer §8 blocks, and the planner weighs that against queueing;
* operations whose inputs exceed the assigned device's physical rows
  carry their §8 **block decomposition** explicitly (``a × b × column``
  sub-problem counts, the same arithmetic
  :mod:`repro.arrays.decomposition` executes);
* producer→consumer systolic stages are fused into **pipelined
  chains**: §9's "the data is pipelined from the memories through the
  switch and through the processor array" — a chain's timeline follows
  the Σ fill + max stream law of :mod:`repro.machine.pipelining`
  instead of store-and-forward Σ (fill + stream).

:meth:`SystolicDatabaseMachine.compile` produces a PhysicalPlan;
``run``/``run_many`` lower logical plans through it implicitly.
``PhysicalPlan.explain()`` renders assignments, block counts, chains,
and the predicted makespan — the CLI's ``--explain``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional, Sequence

from repro import obs
from repro.errors import PlanError
from repro.machine.inference import estimate_rows, infer_schema
from repro.machine.pipelining import StageCost, analyze_chain
from repro.machine.plan import (
    Base,
    Dedup,
    Difference,
    Divide,
    Intersect,
    Join,
    PlanNode,
    Project,
    Select,
    Union,
    walk,
)
from repro.perf.cost import (
    OpCost,
    ScanCost,
    bit_comparison_cost,
    comparison_cost,
    division_cost,
    join_cost,
)
from repro.relational.relation import Relation
from repro.systolic.engine import resolve_backend

__all__ = [
    "OP_LOAD",
    "OP_RESIDENT",
    "OP_CPU",
    "OP_ARRAY",
    "PhysicalOp",
    "PipelinedChain",
    "PhysicalPlan",
    "PhysicalPlanner",
    "estimate_cost",
    "actual_cost",
    "plan_fingerprint",
]

OP_LOAD = "load"          #: disk read (possibly with a fused selection)
OP_RESIDENT = "resident"  #: already in a memory module, ready at time 0
OP_CPU = "cpu"            #: host-CPU selection
OP_ARRAY = "array"        #: systolic-device operation


def _distinct(values) -> int:
    return len(dict.fromkeys(values))


def plan_fingerprint(plans: Sequence[PlanNode]) -> tuple:
    """A hashable structural key for a transaction's logical plans.

    Two transactions fingerprint equally iff their plan DAGs have the
    same shape, parameters, *and sharing*: a subtree referenced twice
    (computed once by the planner) is encoded as a back-reference, so a
    plan that duplicates the subtree instead keys differently.  This is
    what the machine's compile cache is keyed on.
    """
    memo: dict[int, int] = {}

    def fingerprint(node: PlanNode) -> tuple:
        ref = memo.get(id(node))
        if ref is not None:
            return ("ref", ref)
        memo[id(node)] = len(memo)
        params: list[tuple] = []
        children: list[tuple] = []
        for spec in fields(node):
            value = getattr(node, spec.name)
            if isinstance(value, PlanNode):
                children.append(fingerprint(value))
            else:
                if isinstance(value, list):
                    value = tuple(value)
                params.append((spec.name, value))
        return (type(node).__name__, tuple(params), tuple(children))

    return tuple(fingerprint(plan) for plan in plans)


def estimate_cost(
    node: PlanNode,
    n_a: int,
    n_b: int,
    arity_a: int,
    n_columns: int,
    max_rows: int,
    max_cols: int,
    element_bits: Optional[int] = None,
) -> OpCost:
    """Predicted device cost of an array operation from size estimates.

    ``n_columns`` is the operator's column-stream width: the projected
    column count for :class:`Project`, the join-pair count for
    :class:`Join`, the input arity otherwise.  ``element_bits`` prices
    the operation on a §8 **bit-level** device instead (every streamed
    column becomes ``element_bits`` bit columns, ``max_cols`` counts
    bit comparators); only the equality-based comparison operations
    have a bit-level form.
    """
    if element_bits is not None:
        if isinstance(node, (Intersect, Difference)):
            return bit_comparison_cost(
                n_a, n_b, arity_a, element_bits, max_rows, max_cols
            )
        if isinstance(node, Union):
            both = n_a + n_b
            return bit_comparison_cost(
                both, both, arity_a, element_bits, max_rows, max_cols
            )
        if isinstance(node, Dedup):
            return bit_comparison_cost(
                n_a, n_a, arity_a, element_bits, max_rows, max_cols
            )
        if isinstance(node, Project):
            return bit_comparison_cost(
                n_a, n_a, n_columns, element_bits, max_rows, max_cols
            )
        raise PlanError(
            f"{node.describe()} has no bit-level device form "
            f"(equality-based comparison operations only)"
        )
    if isinstance(node, (Intersect, Difference)):
        return comparison_cost(n_a, n_b, arity_a, max_rows, max_cols)
    if isinstance(node, Union):
        both = n_a + n_b
        return comparison_cost(both, both, arity_a, max_rows, max_cols)
    if isinstance(node, Dedup):
        return comparison_cost(n_a, n_a, arity_a, max_rows, max_cols)
    if isinstance(node, Project):
        return comparison_cost(n_a, n_a, n_columns, max_rows, max_cols)
    if isinstance(node, Join):
        return join_cost(n_a, n_b, len(node.on), max_rows, max_cols)
    if isinstance(node, Divide):
        # Distinct group count is data-dependent; the estimate assumes
        # every dividend pair names a fresh group (upper bound).
        return division_cost(n_a, max(1, n_a), n_b, max_rows, max_cols)
    raise PlanError(f"{node.describe()} is not an array operation")


def actual_cost(
    node: PlanNode,
    inputs: Sequence[Relation],
    max_rows: int,
    max_cols: int,
    element_bits: Optional[int] = None,
) -> OpCost:
    """Exact device cost of an array operation over its actual inputs.

    Uses the same schedule arithmetic the blocked operators execute, so
    ``actual_cost(...).total_pulses`` equals the device run's reported
    pulse count — on bit-level devices too (pass the device's
    ``element_bits``).
    """
    n_a = len(inputs[0])
    n_b = len(inputs[1]) if len(inputs) > 1 else n_a
    if isinstance(node, Divide):
        a = inputs[0]
        value_pos = a.schema.resolve(node.a_value)
        if node.a_group is None:
            group_pos = 1 - value_pos
        else:
            group_pos = a.schema.resolve(node.a_group)
        divisor_pos = inputs[1].schema.resolve(node.b_value)
        n_distinct = _distinct(row[group_pos] for row in a.tuples)
        n_divisor = _distinct(row[divisor_pos] for row in inputs[1].tuples)
        return division_cost(n_a, max(1, n_distinct), n_divisor,
                             max_rows, max_cols)
    if isinstance(node, Project):
        if element_bits is not None:
            return bit_comparison_cost(
                n_a, n_a, len(node.columns), element_bits,
                max_rows, max_cols,
            )
        return comparison_cost(n_a, n_a, len(node.columns),
                               max_rows, max_cols)
    return estimate_cost(node, n_a, n_b, inputs[0].arity, 0,
                         max_rows, max_cols, element_bits=element_bits)


@dataclass
class PhysicalOp:
    """One operation of a physical plan, bound to a device."""

    op_id: int
    node: PlanNode
    kind: str
    device: str
    inputs: tuple[int, ...]
    release: float
    label: str
    est_rows_out: int
    est_bytes_out: int
    est_seconds: float
    est_fill_seconds: float = 0.0
    #: streamed comparator width in bits (columns × bits per element);
    #: 0 for non-array steps.  On a §8 bit-level device this is the
    #: column count itself — each streamed column is one bit.
    est_bits: int = 0
    cost: Optional[OpCost] = None
    chain: Optional[int] = None
    selection: Optional[tuple] = None
    fused_select: Optional[PlanNode] = None
    base_name: Optional[str] = None
    #: store-backed loads only: the §8 chunk pruning the grid index
    #: predicted for this read (explain's ``chunks k/N pruned``).
    scan: Optional[ScanCost] = None
    est_start: float = 0.0
    est_end: float = 0.0

    @property
    def block_runs(self) -> int:
        """§8 sub-problems the assigned device is predicted to execute."""
        return self.cost.block_runs if self.cost is not None else 0

    def blocks_label(self) -> str:
        """``a×b×c = n`` block-decomposition summary for explain()."""
        if self.cost is None or self.cost.block_runs == 0:
            return "-"
        c = self.cost
        if c.block_runs == 1:
            return "1"
        return f"{c.a_blocks}x{c.b_blocks}x{c.column_blocks} = {c.block_runs}"


@dataclass
class PipelinedChain:
    """A maximal run of fused producer→consumer systolic stages."""

    chain_id: int
    op_ids: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.op_ids)


class PhysicalPlan:
    """The compiled physical form of one transaction."""

    def __init__(
        self,
        ops: list[PhysicalOp],
        chains: list[PipelinedChain],
        outputs: list[int],
        pipeline: bool,
        backend: Optional[str] = None,
    ) -> None:
        self.ops = ops
        self.chains = chains
        self.outputs = outputs
        self.pipeline = pipeline
        #: name of the execution engine the machine's devices run block
        #: runs on (explain footer); None when unknown.
        self.backend = backend
        self._by_id = {op.op_id: op for op in ops}

    def __getitem__(self, op_id: int) -> PhysicalOp:
        return self._by_id[op_id]

    @property
    def predicted_makespan(self) -> float:
        """Predicted end-to-end seconds for the whole transaction."""
        return max((op.est_end for op in self.ops), default=0.0)

    def chain_of(self, op: PhysicalOp) -> Optional[PipelinedChain]:
        """The chain an op belongs to, if any."""
        if op.chain is None:
            return None
        return self.chains[op.chain]

    def device_assignments(self) -> dict[str, str]:
        """Operator label → assigned device, for quick inspection."""
        return {op.label: op.device for op in self.ops}

    def explain(self) -> str:
        """Device assignments, block counts, chains, predicted makespan."""
        discipline = "pipelined" if self.pipeline else "store-and-forward"
        lines = [
            f"physical plan ({discipline}, {len(self.ops)} ops, "
            f"{sum(1 for c in self.chains if len(c) > 1)} fused chains)",
            f"{'op':>4}  {'device':<14} {'rows(est)':>9}  {'bits':>5}  "
            f"{'blocks':<12} {'chain':<6} {'t(est)':>10}  step",
        ]
        for op in self.ops:
            chain = self.chain_of(op)
            chain_label = (
                f"#{chain.chain_id}" if chain is not None and len(chain) > 1
                else "-"
            )
            bits_label = str(op.est_bits) if op.est_bits else "-"
            lines.append(
                f"{op.op_id:>4}  {op.device:<14} {op.est_rows_out:>9}  "
                f"{bits_label:>5}  "
                f"{op.blocks_label():<12} {chain_label:<6} "
                f"{op.est_seconds * 1e3:>8.3f}ms  {op.label}"
            )
        lines.append(
            f"predicted makespan {self.predicted_makespan * 1e3:.3f} ms"
        )
        if self.backend is not None:
            lines.append(f"backend {self.backend}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        fused = sum(1 for c in self.chains if len(c) > 1)
        return (
            f"PhysicalPlan({len(self.ops)} ops, {fused} chains, "
            f"predicted {self.predicted_makespan * 1e3:.3f} ms)"
        )


class PhysicalPlanner:
    """Compiles logical plan DAGs for one machine's device complement."""

    def __init__(self, machine) -> None:
        self.machine = machine

    # -- entry point ---------------------------------------------------------

    def compile(
        self,
        plans: Sequence[PlanNode],
        arrivals: Optional[Sequence[float]] = None,
        pipeline: bool = True,
    ) -> PhysicalPlan:
        """Lower logical plans into a device-assigned physical plan."""
        if not plans:
            raise PlanError("a transaction needs at least one plan")
        if arrivals is None:
            arrivals = [0.0] * len(plans)
        if len(arrivals) != len(plans):
            raise PlanError(
                f"need one arrival per plan: {len(arrivals)} arrivals, "
                f"{len(plans)} plans"
            )
        if any(t < 0 for t in arrivals):
            raise PlanError("arrival times must be non-negative")

        with obs.span("planner.compile", plans=len(plans)) as sp:
            order, release = self._walk_order(plans, arrivals)
            parent_count = self._parent_count(order)
            fused = self._fused_selects(order, parent_count)
            with obs.span("planner.assign"):
                ops, op_of_node = self._assign(
                    order, release, parent_count, fused
                )
            with obs.span("planner.fuse"):
                chains = (
                    self._fuse_chains(ops, op_of_node, parent_count)
                    if pipeline else []
                )
            with obs.span("planner.predict"):
                self._predict_timeline(ops, chains)
            outputs = [op_of_node[id(plan)] for plan in plans]
            sp.set(
                ops=len(ops),
                chains=sum(1 for c in chains if len(c) > 1),
            )
        return PhysicalPlan(
            ops, chains, outputs, pipeline, backend=self._backend_name()
        )

    def _backend_name(self) -> str:
        """Name of the engine the machine's devices execute with."""
        spec = next(
            (d.backend for d in self.machine.devices
             if hasattr(d, "backend")),
            None,
        )
        engine = resolve_backend(spec)
        return getattr(engine, "name", type(engine).__name__)

    # -- plan walk -----------------------------------------------------------

    def _walk_order(self, plans, arrivals):
        order: list[PlanNode] = []
        release: dict[int, float] = {}
        seen: set[int] = set()
        for plan, arrival in sorted(
            zip(plans, arrivals), key=lambda pair: pair[1]
        ):
            for node in walk(plan):
                if id(node) not in seen:
                    seen.add(id(node))
                    order.append(node)
                    release[id(node)] = arrival
        return order, release

    @staticmethod
    def _parent_count(order):
        count: dict[int, int] = {}
        for node in order:
            for child in node.children:
                count[id(child)] = count.get(id(child), 0) + 1
        return count

    def _fused_selects(self, order, parent_count):
        """§9/[8]: single-parent Select-over-Base rides the disk read.

        Fusable on a logic-per-track disk (the predicate evaluates
        on-track) and on store-backed relations (the store applies the
        predicate while scanning the chunks its grid index could not
        prune — the selection never leaves the storage layer).
        """
        disk = self.machine.disk
        store_backed = getattr(disk, "store_backed", None)
        fused: dict[int, Select] = {}
        for node in order:
            if not (
                isinstance(node, Select)
                and isinstance(node.child, Base)
                and parent_count.get(id(node.child), 0) == 1
            ):
                continue
            if disk.logic_per_track or (
                store_backed is not None and store_backed(node.child.name)
            ):
                fused[id(node.child)] = node
        return fused

    # -- catalog estimates -----------------------------------------------------

    def _base_catalog(self):
        """name → (schema, cardinality) for every reachable base relation.

        Sizes come from :meth:`MachineDisk.profile`, which answers from
        the store manifest for store-backed relations — costing a plan
        never materialises out-of-core tuples.
        """
        schemas, cards = {}, {}
        for name, (_, relation, _, _) in self.machine._resident.items():
            schemas[name] = relation.schema
            cards[name] = len(relation)
        disk = self.machine.disk
        profile = getattr(disk, "profile", None)
        for name in disk.names():
            if name not in schemas:
                if profile is not None:
                    rows, _, schema = profile(name)
                else:
                    relation = disk.relation(name)
                    rows, schema = len(relation), relation.schema
                schemas[name] = schema
                cards[name] = rows
        return schemas, cards

    # -- device assignment -------------------------------------------------------

    def _assign(self, order, release, parent_count, fused):
        machine = self.machine
        schemas, cards = self._base_catalog()
        element_bytes = (machine.element_bits + 7) // 8
        bandwidth = machine.memories[0].bandwidth_bytes_per_s

        def est_bytes(rows: int, arity: int) -> int:
            return rows * arity * element_bytes

        def transfer(nbytes: int) -> float:
            return nbytes / bandwidth

        ops: list[PhysicalOp] = []
        op_of_node: dict[int, int] = {}
        est_free: dict[str, float] = {
            d.name: 0.0 for d in machine.devices
        }
        est_disk_free = 0.0
        loaded_bases: dict[str, int] = {}

        def add(op: PhysicalOp) -> PhysicalOp:
            ops.append(op)
            op_of_node[id(op.node)] = op.op_id
            return op

        for node in order:
            if id(node) in op_of_node:
                continue
            op_id = len(ops)
            if isinstance(node, Base):
                if node.name in machine._resident:
                    relation = machine._resident[node.name][1]
                    add(PhysicalOp(
                        op_id=op_id, node=node, kind=OP_RESIDENT,
                        device="memory", inputs=(), release=release[id(node)],
                        label=node.name, est_rows_out=len(relation),
                        est_bytes_out=est_bytes(len(relation), relation.arity),
                        est_seconds=0.0,
                    ))
                    continue
                select = fused.get(id(node))
                if select is None and node.name in loaded_bases:
                    op_of_node[id(node)] = loaded_bases[node.name]
                    continue
                base_rows, base_arity, _ = (
                    machine.disk.profile(node.name)
                    if hasattr(machine.disk, "profile")
                    else (
                        len(machine.disk.relation(node.name)),
                        machine.disk.relation(node.name).arity,
                        None,
                    )
                )
                disk_elem = (machine.disk.element_bits + 7) // 8
                if select is not None:
                    rows = estimate_rows(select, {node.name: base_rows})
                    label = f"load {select.describe()}"
                    selection = (select.column, select.op, select.value)
                else:
                    rows = base_rows
                    label = f"load {node.name}"
                    selection = None
                scan = None
                if getattr(machine.disk, "store_backed", None) and (
                    machine.disk.store_backed(node.name)
                ):
                    handle = machine.disk.stored_handle(node.name)
                    if selection is not None:
                        chunk_ids = handle.select_chunks(*selection)
                    else:
                        chunk_ids = list(range(handle.n_chunks))
                    rows_scanned = sum(
                        handle.chunks[i].rows for i in chunk_ids
                    )
                    scan = ScanCost(
                        chunks_total=handle.n_chunks,
                        chunks_read=len(chunk_ids),
                        rows_scanned=rows_scanned,
                        nbytes=rows_scanned * base_arity * disk_elem,
                    )
                    read_seconds = machine.disk.model.read_seconds(scan.nbytes)
                    label += (
                        f" [chunks {scan.chunks_read}/{scan.chunks_total}, "
                        f"{scan.chunks_pruned} pruned]"
                    )
                else:
                    read_seconds = machine.disk.model.read_seconds(
                        base_rows * base_arity * disk_elem
                    )
                op = add(PhysicalOp(
                    op_id=op_id, node=node, kind=OP_LOAD, device="disk",
                    inputs=(), release=release[id(node)], label=label,
                    est_rows_out=rows,
                    est_bytes_out=est_bytes(rows, base_arity),
                    est_seconds=read_seconds,
                    selection=selection, fused_select=select,
                    base_name=node.name, scan=scan,
                ))
                if select is not None:
                    op_of_node[id(select)] = op.op_id
                else:
                    loaded_bases[node.name] = op.op_id
                start = max(est_disk_free, op.release)
                op.est_start, op.est_end = start, start + read_seconds
                est_disk_free = op.est_end
                continue

            input_ids = tuple(op_of_node[id(child)] for child in node.children)
            in_ops = [ops[i] for i in input_ids]
            ready = max(
                [release[id(node)]] + [op.est_end for op in in_ops]
            )
            schema = infer_schema(node, schemas)
            rows_out = estimate_rows(node, cards)
            bytes_out = est_bytes(rows_out, len(schema))

            if isinstance(node, Select):
                cpu = next(
                    d for d in machine.devices if d.kind == node.device_kind
                )
                seconds = in_ops[0].est_rows_out * cpu.tuple_op_ns * 1e-9
                op = add(PhysicalOp(
                    op_id=op_id, node=node, kind=OP_CPU, device=cpu.name,
                    inputs=input_ids, release=release[id(node)],
                    label=node.describe(), est_rows_out=rows_out,
                    est_bytes_out=bytes_out, est_seconds=seconds,
                ))
                start = max(ready, est_free[cpu.name])
                op.est_start, op.est_end = start, start + seconds
                est_free[cpu.name] = op.est_end
                continue

            # Array operation: cost every candidate device, pick the one
            # that finishes earliest (cost-aware, not first-free).
            n_a = in_ops[0].est_rows_out
            n_b = in_ops[1].est_rows_out if len(in_ops) > 1 else n_a
            arity_a = len(infer_schema(node.children[0], schemas))
            n_columns = len(node.columns) if isinstance(node, Project) else 0
            candidates = [
                d for d in machine.devices if d.kind == node.device_kind
            ]
            if not candidates:
                raise PlanError(
                    f"no device of kind {node.device_kind!r} is attached "
                    f"to the machine"
                )
            best = None
            for device in candidates:
                cost = estimate_cost(
                    node, n_a, n_b, arity_a, n_columns,
                    device.capacity.max_rows, device.capacity.max_cols,
                    element_bits=getattr(device, "element_bits", None),
                )
                streams = [transfer(op.est_bytes_out) for op in in_ops]
                streams.append(transfer(bytes_out))
                seconds = max([cost.seconds(device.technology)] + streams)
                start = max(ready, est_free[device.name])
                key = (start + seconds, device.name)
                if best is None or key < best[0]:
                    best = (key, device, cost, seconds, start)
            _, device, cost, seconds, start = best
            fill = min(cost.fill_seconds(device.technology), seconds)
            if isinstance(node, Project):
                stream_cols = n_columns
            elif isinstance(node, Join):
                stream_cols = len(node.on)
            elif isinstance(node, Divide):
                stream_cols = 2  # the (group, value) dividend pair
            else:
                stream_cols = arity_a
            per_element = (
                getattr(device, "element_bits", None) or machine.element_bits
            )
            op = add(PhysicalOp(
                op_id=op_id, node=node, kind=OP_ARRAY, device=device.name,
                inputs=input_ids, release=release[id(node)],
                label=node.describe(), est_rows_out=rows_out,
                est_bytes_out=bytes_out, est_seconds=seconds,
                est_fill_seconds=fill, est_bits=stream_cols * per_element,
                cost=cost,
            ))
            op.est_start, op.est_end = start, start + seconds
            est_free[device.name] = op.est_end
        return ops, op_of_node

    # -- chain fusion -------------------------------------------------------------

    def _fuse_chains(self, ops, op_of_node, parent_count):
        """Fuse single-consumer producer→consumer array stages (§9).

        A chain's stages all run concurrently under the pipeline law, so
        every stage needs its own device — a consumer only joins its
        producer's chain when its assigned device is not already one of
        the chain's.
        """
        chains: list[PipelinedChain] = []
        tail_chain: dict[int, int] = {}  # op_id of a chain's tail -> chain idx
        for op in ops:
            if op.kind != OP_ARRAY:
                continue
            producer = None
            for input_id in op.inputs:
                candidate = ops[input_id]
                if (
                    candidate.kind == OP_ARRAY
                    and parent_count.get(id(candidate.node), 0) == 1
                    and input_id in tail_chain
                ):
                    producer = candidate
                    break
            if producer is not None:
                # Fusing is pointless (and drags the producer's start to
                # the consumer's) when some *other* input arrives after
                # the producer would already have finished.
                other_ready = max(
                    (ops[i].est_end for i in op.inputs
                     if i != producer.op_id),
                    default=0.0,
                )
                if other_ready > producer.est_end:
                    producer = None
            if producer is None:
                chain = PipelinedChain(chain_id=len(chains), op_ids=[op.op_id])
                chains.append(chain)
                tail_chain[op.op_id] = chain.chain_id
                continue
            chain = chains[tail_chain[producer.op_id]]
            devices = {ops[i].device for i in chain.op_ids}
            if op.device in devices:
                fresh = PipelinedChain(chain_id=len(chains),
                                       op_ids=[op.op_id])
                chains.append(fresh)
                tail_chain[op.op_id] = fresh.chain_id
                continue
            del tail_chain[producer.op_id]
            chain.op_ids.append(op.op_id)
            tail_chain[op.op_id] = chain.chain_id
        for chain in chains:
            if len(chain) > 1:
                for op_id in chain.op_ids:
                    ops[op_id].chain = chain.chain_id
        return chains

    # -- predicted timeline ---------------------------------------------------------

    def _predict_timeline(self, ops, chains):
        """Re-time the plan with fused chains under the pipeline law.

        An idealized schedule — device and disk contention, but no
        memory-port modelling (the executed report has the real one).
        """
        est_free: dict[str, float] = {}
        est_disk_free = 0.0
        scheduled: set[int] = set()

        def chain_members(op) -> list[PhysicalOp]:
            if op.chain is None:
                return [op]
            return [ops[i] for i in chains[op.chain].op_ids]

        for op in ops:
            if op.op_id in scheduled:
                continue
            if op.kind == OP_RESIDENT:
                op.est_start = op.est_end = 0.0
                scheduled.add(op.op_id)
                continue
            if op.kind == OP_LOAD:
                start = max(est_disk_free, op.release)
                op.est_start, op.est_end = start, start + op.est_seconds
                est_disk_free = op.est_end
                scheduled.add(op.op_id)
                continue
            members = chain_members(op)
            if members[-1].op_id != op.op_id:
                continue  # schedule the whole chain at its last member
            internal = {m.op_id for m in members}
            stages = [
                StageCost(
                    name=m.label,
                    fill=m.est_fill_seconds,
                    stream=max(0.0, m.est_seconds - m.est_fill_seconds),
                )
                for m in members
            ]
            timing = analyze_chain(stages)
            offsets = self._stage_offsets(stages)
            # Per-stage readiness: stage k only needs its own inputs by
            # chain_start + lo_k.
            start = 0.0
            for m, (lo, _) in zip(members, offsets):
                start = max(start, m.release - lo,
                            est_free.get(m.device, 0.0) - lo)
                for i in m.inputs:
                    if i not in internal:
                        start = max(start, ops[i].est_end - lo)
            for m, (lo, hi) in zip(members, offsets):
                m.est_start, m.est_end = start + lo, start + hi
                est_free[m.device] = m.est_end
                scheduled.add(m.op_id)
            assert abs(members[-1].est_end - (start + timing.pipelined)) < 1e-12

    @staticmethod
    def _stage_offsets(stages: list[StageCost]) -> list[tuple[float, float]]:
        """(start, end) of each chain stage relative to the chain start.

        Stage k starts once the k−1 upstream fills have elapsed and ends
        when its last result emerges: Σ_{i≤k} fill + max_{i≤k} stream —
        the prefix form of the pipeline law, so the last stage's end is
        exactly ``analyze_chain(stages).pipelined``.
        """
        offsets = []
        fill_sum = 0.0
        stream_max = 0.0
        for stage in stages:
            lo = fill_sum
            fill_sum += stage.fill
            stream_max = max(stream_max, stage.stream)
            offsets.append((lo, fill_sum + stream_max))
        return offsets
