"""The integrated systolic database machine of §9 (Fig 9-1).

Disk, memory modules, crossbar switch, fixed-size systolic devices, a
host CPU, a plan language, and a scheduler that runs multi-operation
transactions with inter-operation concurrency — plus Song's tree
machine as the §9 comparison architecture.
"""

from repro.machine.catalog import Catalog
from repro.machine.crossbar import CrossbarSwitch, Link
from repro.machine.device import CpuDevice, DeviceRun, SystolicDevice
from repro.machine.disk import MachineDisk
from repro.machine.execution import MachineState, PlanExecutor
from repro.machine.memory import MemoryModule, relation_bytes
from repro.machine.plan import (
    Base,
    Dedup,
    Difference,
    Divide,
    Intersect,
    Join,
    PlanNode,
    Project,
    Select,
    Union,
    walk,
)
from repro.machine.inference import estimate_rows, infer_schema
from repro.machine.physical import (
    PhysicalOp,
    PhysicalPlan,
    PhysicalPlanner,
    PipelinedChain,
)
from repro.machine.pipelining import ChainTiming, StageCost, analyze_chain
from repro.machine.report_export import (
    report_to_csv,
    report_to_dict,
    report_to_json,
)
from repro.machine.pool import AdmissionGate, EnginePool, PlanCache
from repro.machine.scheduler import (
    DeviceRoster,
    ExecutionReport,
    ScheduledStep,
    gantt,
)
from repro.machine.session import Session
from repro.machine.system import SystolicDatabaseMachine
from repro.machine.tree_machine import TreeMachine, TreeRun

__all__ = [
    "AdmissionGate",
    "Base",
    "Catalog",
    "ChainTiming",
    "CpuDevice",
    "CrossbarSwitch",
    "Dedup",
    "DeviceRoster",
    "DeviceRun",
    "Difference",
    "Divide",
    "EnginePool",
    "ExecutionReport",
    "Intersect",
    "Join",
    "Link",
    "MachineDisk",
    "MachineState",
    "MemoryModule",
    "PhysicalOp",
    "PhysicalPlan",
    "PhysicalPlanner",
    "PipelinedChain",
    "PlanCache",
    "PlanExecutor",
    "PlanNode",
    "Project",
    "ScheduledStep",
    "Select",
    "Session",
    "SystolicDatabaseMachine",
    "StageCost",
    "SystolicDevice",
    "TreeMachine",
    "TreeRun",
    "Union",
    "analyze_chain",
    "estimate_rows",
    "gantt",
    "infer_schema",
    "relation_bytes",
    "report_to_csv",
    "report_to_dict",
    "report_to_json",
    "walk",
]
