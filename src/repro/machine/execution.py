"""The execution core shared by every front-end of the Fig 9-1 machine.

:class:`SystolicDatabaseMachine` (one caller, one lifetime) and
:class:`~repro.machine.pool.EnginePool` (many concurrent sessions) both
execute physical plans the same way; this module holds that shared
machinery so the two front-ends cannot drift:

* :class:`MachineState` — the *simulated-resource* state one execution
  mutates: memory modules, crossbar port windows, resident relations,
  and the key counter.  The legacy machine keeps one persistent state
  for its whole lifetime (results stay resident between transactions,
  §9's "the final results ... reside in memory"); the pool builds a
  fresh state per admitted query, which is what makes a pooled run
  bit-identical to running alone on a fresh machine.
* :class:`PlanExecutor` — the two-phase executor: a host-parallel
  *compute phase* resolving every op's data result, then a sequential
  *replay phase* doing all the timing and memory bookkeeping, so a
  parallel run is bit-identical to a serial one.
* :func:`build_devices`, :func:`place_resident`,
  :func:`roster_fingerprint` — the construction helpers both
  front-ends share.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Optional, Sequence

from repro import obs
from repro.arrays.decomposition import ArrayCapacity
from repro.errors import (
    CapacityError,
    DeviceFaultError,
    DiskFaultError,
    PlanError,
)
from repro.faults.recovery import (
    DEFAULT_RETRY_POLICY,
    cancellable_sleep,
    retry_call,
)
from repro.obs import metrics
from repro.machine.crossbar import CrossbarSwitch
from repro.machine.device import CpuDevice, SystolicDevice
from repro.machine.disk import MachineDisk
from repro.machine.memory import MemoryModule, relation_bytes
from repro.machine.physical import (
    OP_LOAD,
    OP_RESIDENT,
    PhysicalOp,
    PhysicalPlan,
    PhysicalPlanner,
    actual_cost,
)
from repro.machine.pipelining import StageCost
from repro.machine.plan import PlanNode
from repro.machine.scheduler import (
    DeviceRoster,
    ExecutionReport,
    HostExecutor,
    ScheduledStep,
)
from repro.perf.technology import TechnologyModel
from repro.relational.relation import Relation

__all__ = [
    "MachineState",
    "PlanExecutor",
    "build_devices",
    "place_resident",
    "roster_fingerprint",
]


def build_devices(
    specs: Sequence[tuple],
    capacity: ArrayCapacity,
    technology: TechnologyModel,
    backend=None,
) -> list[SystolicDevice | CpuDevice]:
    """The device complement for a roster: systolic arrays plus the CPU.

    Each spec is ``(kind, count)``, ``(kind, count, ArrayCapacity)``,
    or ``(kind, count, ArrayCapacity, element_bits)`` — the third
    element gives one roster heterogeneous array sizes, which is what
    makes cost-aware device choice interesting; the fourth builds §8
    **bit-level** comparison arrays (``max_cols`` bit comparators,
    ``element_bits`` bits per word element), which the planner prices
    against the word devices.
    """
    devices: list[SystolicDevice | CpuDevice] = []
    kind_index: dict[str, itertools.count] = {}
    for spec in specs:
        kind, count = spec[0], spec[1]
        device_capacity = spec[2] if len(spec) > 2 else capacity
        element_bits = spec[3] if len(spec) > 3 else None
        indices = kind_index.setdefault(kind, itertools.count())
        for _ in range(count):
            devices.append(
                SystolicDevice(
                    f"{kind}{next(indices)}", kind,
                    capacity=device_capacity, technology=technology,
                    backend=backend, element_bits=element_bits,
                )
            )
    devices.append(CpuDevice("cpu"))
    return devices


def roster_fingerprint(
    devices: Iterable[SystolicDevice | CpuDevice],
) -> tuple:
    """A hashable identity of a device complement, for plan-cache keys."""
    return tuple(
        (
            device.name,
            device.kind,
            getattr(getattr(device, "capacity", None), "max_rows", None),
            getattr(getattr(device, "capacity", None), "max_cols", None),
            getattr(device, "element_bits", None),
        )
        for device in devices
    )


class MachineState:
    """The mutable simulated-resource state one execution works against."""

    def __init__(
        self,
        element_bits: int,
        disk: MachineDisk,
        memories: list[MemoryModule],
        devices: list[SystolicDevice | CpuDevice],
        crossbar: CrossbarSwitch,
    ) -> None:
        self.element_bits = element_bits
        self.disk = disk
        self.memories = memories
        self.devices = devices
        self.crossbar = crossbar
        #: relations already resident in memories (ready at time 0):
        #: name -> (key, relation, ready, memory name)
        self.resident: dict[str, tuple[str, Relation, float, str]] = {}
        self.step_counter = itertools.count()


def place_resident(state: MachineState, name: str, relation: Relation) -> None:
    """Place a relation in a memory module, ready at time 0.

    §9's memories hold results between operations and transactions
    ("the final results are eventually returned to the disk ... from
    the memory in which they reside"); a resident relation models
    exactly that — a prior transaction's output still in memory,
    needing no disk read.  Residents spread across modules (emptiest
    first) so their ports don't become a single serialization point.
    """
    if name in state.resident:
        raise PlanError(f"relation {name!r} is already resident")
    nbytes = relation_bytes(relation, state.element_bits)
    candidates = [m for m in state.memories if m.free_bytes >= nbytes]
    if not candidates:
        raise CapacityError(
            f"no memory module can absorb {nbytes} bytes for {name!r}"
        )
    memory = min(candidates, key=lambda m: (m.used_bytes, m.name))
    key = f"resident:{name}"
    memory.store(key, relation, nbytes)
    state.resident[name] = (key, relation, 0.0, memory.name)


class PlanExecutor:
    """Executes compiled physical plans against a :class:`MachineState`.

    Execution happens in two phases.  The **compute phase** resolves
    every op's data result — disk reads and device runs, which are pure
    functions of their inputs — with independent ops overlapped on host
    threads (:class:`HostExecutor`).  The **replay phase** then walks
    the plan in topological order doing all the *simulated* bookkeeping
    (port windows, memory placement, the timed report) sequentially, so
    the timeline is deterministic and bit-identical whether the compute
    phase ran parallel or serial.
    """

    def __init__(
        self,
        state: MachineState,
        host_workers: Optional[int] = None,
        roster_fairness: bool = False,
        faults=None,
        cancel=None,
        retry_policy=None,
        fault_scope: str = "",
    ) -> None:
        self.state = state
        self.host_workers = host_workers
        self.roster_fairness = roster_fairness
        #: Active :class:`~repro.faults.plan.FaultPlan` (None = no faults).
        self.faults = faults
        #: :class:`~repro.faults.recovery.CancelToken` polled at dispatch
        #: boundaries (None = not cancellable).
        self.cancel = cancel
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        #: Distinguishes fault sites across shards/queries sharing a plan.
        self.fault_scope = fault_scope

    def run_physical(
        self,
        physical: PhysicalPlan,
        parallel: bool = True,
    ) -> tuple[list[Relation], ExecutionReport]:
        """Execute an already-compiled physical plan.

        Returns one result per original plan (``physical.outputs``
        order) and the executed timeline.  The report is the ground
        truth; ``physical.predicted_makespan`` is the planner's
        port-blind forecast of the same schedule.
        """
        state = self.state
        with obs.span("machine.run", ops=len(physical.ops)) as run_span:
            with obs.span("machine.compute_phase"):
                runs, task_spans = self._compute_phase(physical, parallel)
            report = ExecutionReport()
            roster = DeviceRoster(state.devices, fairness=self.roster_fairness)
            disk_free = 0.0
            #: op id -> (result key, relation, ready time, memory name)
            produced: dict[int, tuple[str, Relation, float, str]] = {}
            with obs.span("machine.replay"):
                for op in physical.ops:
                    if op.op_id in produced:
                        continue
                    if op.kind == OP_RESIDENT:
                        with obs.span(
                            "machine.op", op=op.label, device="resident",
                            kind=op.kind,
                        ):
                            produced[op.op_id] = state.resident[op.node.name]
                        continue
                    if op.kind == OP_LOAD:
                        disk_free = self._run_load(
                            op, produced, report, disk_free,
                            runs[op.op_id], task_spans.get(op.op_id),
                        )
                        continue
                    chain = physical.chain_of(op)
                    if chain is not None and len(chain) > 1:
                        members = [physical[i] for i in chain.op_ids]
                        if members[-1].op_id != op.op_id:
                            # Chains execute as a unit once the machine
                            # reaches the last member: by then every
                            # external input of every stage has been
                            # produced (topological order).
                            continue
                        self._run_chain(
                            members, produced, report, roster, runs,
                            task_spans,
                        )
                    else:
                        self._run_singleton(
                            op, produced, report, roster, runs, task_spans
                        )
            results = [produced[op_id][1] for op_id in physical.outputs]
            run_span.set(makespan_ms=report.makespan * 1e3)
        return results, report

    # -- compute phase ---------------------------------------------------------

    def _compute_phase(
        self, physical: PhysicalPlan, parallel: bool
    ) -> tuple[dict[int, Any], dict[int, Any]]:
        """Resolve every op's data result, overlapping independent ops.

        Returns ``({op_id: result}, {op_id: span})`` where a load's
        result is the ``(relation, read_seconds)`` pair from
        :meth:`MachineDisk.read`, a compute op's is its
        :class:`~repro.machine.device.DeviceRun`, and a resident's is
        the relation itself.  Chain members are computed here exactly
        like singletons — a member's inputs are its producers'
        relations either way — so the replay phase can fall back from a
        fused chain to store-and-forward without recomputing anything.

        When tracing is active, each thunk runs under a **detached**
        ``host.task`` span (returned in the second dict); the replay
        phase grafts those subtrees under the deterministic per-op
        spans, so the recorded tree structure is identical whether the
        compute phase ran parallel or serial.
        """
        state = self.state

        def relation_of(value: Any) -> Relation:
            if isinstance(value, Relation):
                return value  # resident
            if isinstance(value, tuple):
                return value[0]  # disk load: (relation, seconds)
            return value.relation  # DeviceRun

        seed: dict[int, Any] = {}
        thunks: dict[int, tuple[tuple[int, ...], Any]] = {}
        for op in physical.ops:
            if op.op_id in seed or op.op_id in thunks:
                continue
            if op.kind == OP_RESIDENT:
                seed[op.op_id] = state.resident[op.node.name][1]
            elif op.kind == OP_LOAD:
                def load(resolved, op=op):
                    return self._guarded_read(op)

                thunks[op.op_id] = ((), load)
            else:
                device = self._device(op.device)
                deps = tuple(op.inputs)

                def execute(resolved, op=op, device=device, deps=deps):
                    inputs = [relation_of(resolved[d]) for d in deps]
                    return self._guarded_execute(op, device, inputs)

                thunks[op.op_id] = (deps, execute)
        task_spans: dict[int, Any] = {}
        if obs.enabled():
            labels = {op.op_id: op.label for op in physical.ops}
            for op_id, (deps, fn) in list(thunks.items()):
                thunks[op_id] = (
                    deps,
                    self._traced_thunk(op_id, labels[op_id], fn, task_spans),
                )
        workers = self.host_workers if parallel else 1
        results = HostExecutor(max_workers=workers).run(thunks, seed=seed)
        return results, task_spans

    @staticmethod
    def _traced_thunk(
        op_id: int, label: str, fn: Any, task_spans: dict[int, Any]
    ) -> Any:
        """Wrap a compute thunk in a detached ``host.task`` span.

        The span subtree is free-standing (worker threads have no
        deterministic ancestor) and lands in ``task_spans`` for the
        replay phase to adopt.  Distinct keys make the dict writes
        thread-safe.
        """

        def traced(resolved: dict[int, Any]) -> Any:
            with obs.detached("host.task", op=label) as sp:
                result = fn(resolved)
            task_spans[op_id] = sp
            return result

        return traced

    # -- fault-aware dispatch --------------------------------------------------

    def _guarded_read(self, op: PhysicalOp):
        """One disk read, retried through the fault plan's injections.

        Injection happens *here*, at the dispatch boundary and before
        any span opens, so a failed attempt leaves no trace in the span
        tree — recovered runs keep traces bit-identical to fault-free
        runs.
        """
        state = self.state
        if self.cancel is not None:
            self.cancel.check()
        if self.faults is None:
            return state.disk.read(op.base_name, selection=op.selection)
        faults = self.faults

        def attempt():
            fault = faults.disk_fault(op.base_name, scope=self.fault_scope)
            if fault is not None:
                raise fault
            delay = faults.slowness("disk")
            if delay:
                cancellable_sleep(delay, self.cancel)
            return state.disk.read(op.base_name, selection=op.selection)

        return retry_call(
            attempt,
            policy=self.retry_policy,
            site=f"disk:{self.fault_scope}:{op.op_id}",
            plan=faults,
            cancel=self.cancel,
            retryable=(DiskFaultError,),
        )

    def _guarded_execute(self, op: PhysicalOp, device, inputs: list):
        """One device execute, retried on the *same* planned device.

        A transient fault heals under retry, so the recovered run made
        exactly the dispatches the plan prescribed — results, timeline,
        and spans all bit-identical to fault-free.  A device whose
        budget exhausts is quarantined and the error re-raised as
        *permanent* (``quarantined=True``): the pool's replan loop then
        degrades gracefully onto the surviving roster.
        """
        if self.cancel is not None:
            self.cancel.check()
        if self.faults is None:
            return device.execute(op.node, inputs)
        faults = self.faults
        blocks = op.block_runs or None

        def attempt():
            fault = faults.device_fault(
                device.name, f"op{op.op_id}:{op.label}",
                scope=self.fault_scope, blocks=blocks,
            )
            if fault is not None:
                raise fault
            delay = faults.slowness(device.name)
            if delay:
                cancellable_sleep(delay, self.cancel)
            return device.execute(op.node, inputs)

        try:
            return retry_call(
                attempt,
                policy=self.retry_policy,
                site=f"device:{self.fault_scope}:{op.op_id}",
                plan=faults,
                cancel=self.cancel,
                retryable=(DeviceFaultError,),
            )
        except DeviceFaultError as exc:
            faults.quarantine(device.name)
            raise DeviceFaultError(
                f"device {device.name!r} exhausted its retry budget of "
                f"{self.retry_policy.attempts} on {op.label!r} and was "
                f"quarantined",
                device=device.name,
                quarantined=True,
            ) from exc

    # -- internals ------------------------------------------------------------

    def _new_key(self, node: PlanNode) -> str:
        return f"n{next(self.state.step_counter)}:{node.describe()}"

    def _device(self, name: str) -> SystolicDevice | CpuDevice:
        for device in self.state.devices:
            if device.name == name:
                return device
        raise PlanError(f"unknown device {name!r}")

    def _choose_memory(
        self, nbytes: int, avoid: set[str], ready: float, duration: float
    ) -> tuple[MemoryModule, float]:
        """A memory with space and the earliest free port window."""
        best: Optional[tuple[float, int, MemoryModule]] = None
        for index, memory in enumerate(self.state.memories):
            if memory.name in avoid or memory.free_bytes < nbytes:
                continue
            start = self.state.crossbar.earliest_window(
                memory.name, ready, duration
            )
            candidate = (start, index, memory)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        if best is None:
            raise CapacityError(
                f"no memory module can absorb {nbytes} bytes "
                f"(avoiding {sorted(avoid)})"
            )
        return best[2], best[0]

    def _run_load(
        self,
        op: PhysicalOp,
        produced: dict[int, tuple[str, Relation, float, str]],
        report: ExecutionReport,
        disk_free: float,
        loaded: tuple[Relation, float],
        task_span: Any = None,
    ) -> float:
        """One serial disk read (selection possibly fused on-track)."""
        state = self.state
        with obs.span(
            "machine.op", op=op.label, device="disk", kind=op.kind,
        ) as sp:
            obs.adopt(task_span)
            released = max(disk_free, op.release)
            relation, read_seconds = loaded
            nbytes = relation_bytes(relation, state.element_bits)
            memory, start = self._choose_memory(
                nbytes, avoid=set(), ready=released, duration=read_seconds
            )
            end = start + read_seconds
            key = self._new_key(
                op.fused_select if op.fused_select is not None else op.node
            )
            memory.store(key, relation, nbytes)
            state.crossbar.establish(memory.name, "disk", start, end)
            report.steps.append(ScheduledStep(
                label=op.label,
                device="disk",
                start=start, end=end,
                output_key=key, output_memory=memory.name,
                nbytes_out=nbytes,
            ))
            produced[op.op_id] = (key, relation, end, memory.name)
            sp.set(
                rows_out=len(relation), nbytes_out=nbytes,
                memory=memory.name, sim_start=start, sim_end=end,
            )
        metrics.inc("machine.ops.executed")
        metrics.observe("machine.op.sim_seconds", end - start)
        return end

    def _run_singleton(
        self,
        op: PhysicalOp,
        produced: dict[int, tuple[str, Relation, float, str]],
        report: ExecutionReport,
        roster: DeviceRoster,
        runs: dict[int, Any],
        task_spans: Optional[dict[int, Any]] = None,
    ) -> None:
        """One store-and-forward operation on its assigned device."""
        with obs.span(
            "machine.op", op=op.label, device=op.device, kind=op.kind,
        ) as sp:
            if task_spans is not None:
                obs.adopt(task_spans.get(op.op_id))
            start, end = self._commit_singleton(
                op, produced, report, roster, runs, sp
            )
        metrics.inc("machine.ops.executed")
        metrics.observe("machine.op.sim_seconds", end - start)

    def _commit_singleton(
        self,
        op: PhysicalOp,
        produced: dict[int, tuple[str, Relation, float, str]],
        report: ExecutionReport,
        roster: DeviceRoster,
        runs: dict[int, Any],
        sp: Any,
    ) -> tuple[float, float]:
        state = self.state
        input_keys = []
        input_memories = []
        ready = op.release
        for input_id in op.inputs:
            key, _, child_ready, memory_name = produced[input_id]
            input_keys.append(key)
            input_memories.append(memory_name)
            ready = max(ready, child_ready)

        device = self._device(op.device)
        device_ready = max(ready, roster.free_at(device.name))
        run = runs[op.op_id]
        nbytes_out = relation_bytes(run.relation, state.element_bits)

        # An operation runs at the pace of its slowest stream: any input
        # being read out of its memory, or the result being written back
        # (§6.2's warning — a degenerate join's output can dwarf its
        # inputs — shows up here as output-streaming time).
        stream_seconds = [
            memory.transfer_seconds(memory.size_of(key))
            for key, memory in (
                (k, self._memory(m)) for k, m in zip(input_keys, input_memories)
            )
        ]
        if state.memories:
            stream_seconds.append(
                state.memories[0].transfer_seconds(nbytes_out)
            )
        duration = max([run.seconds] + stream_seconds)

        # Find a start time at which every input port is free for the
        # whole window, the device is free, and an output memory exists.
        start = device_ready
        for _ in range(64):  # converges in a couple of rounds in practice
            adjusted = start
            for memory_name in set(input_memories):
                adjusted = max(
                    adjusted,
                    state.crossbar.earliest_window(
                        memory_name, adjusted, duration
                    ),
                )
            out_memory, out_start = self._choose_memory(
                nbytes_out,
                avoid=set(input_memories),
                ready=adjusted,
                duration=duration,
            )
            adjusted = max(adjusted, out_start)
            if adjusted == start:
                break
            start = adjusted
        end = start + duration

        key = self._new_key(op.node)
        out_memory.store(key, run.relation, nbytes_out)
        for memory_name in set(input_memories):
            state.crossbar.establish(memory_name, device.name, start, end)
        if out_memory.name not in set(input_memories):
            state.crossbar.establish(out_memory.name, device.name, start, end)
        roster.occupy(device.name, end)
        report.steps.append(ScheduledStep(
            label=op.label,
            device=device.name,
            start=start, end=end,
            output_key=key, output_memory=out_memory.name,
            input_keys=tuple(input_keys),
            pulses=run.pulses, block_runs=run.block_runs,
            nbytes_out=nbytes_out,
        ))
        produced[op.op_id] = (key, run.relation, end, out_memory.name)
        sp.set(
            pulses=run.pulses, blocks=run.block_runs,
            rows_out=len(run.relation), nbytes_out=nbytes_out,
            memory=out_memory.name, sim_start=start, sim_end=end,
        )
        return start, end

    def _run_chain(
        self,
        members: list[PhysicalOp],
        produced: dict[int, tuple[str, Relation, float, str]],
        report: ExecutionReport,
        roster: DeviceRoster,
        precomputed: dict[int, Any],
        task_spans: Optional[dict[int, Any]] = None,
    ) -> None:
        """Execute a fused chain under the Σ fill + max stream law (§9).

        Stage *k* starts once the k−1 upstream fills have elapsed and
        holds its device until its last result emerges; intermediate
        results stream device→switch→device, so the consumer takes no
        extra port on the producer's output memory.
        """
        state = self.state
        internal = {m.op_id for m in members}

        # All stage windows overlap, so a memory port can serve only one
        # stage device for the chain's whole span.  If two stages need
        # externals out of the same memory, the ports cannot be
        # disentangled — fall back to store-and-forward for this chain.
        device_of_port: dict[str, str] = {}
        for member in members:
            for input_id in member.inputs:
                if input_id in internal:
                    continue
                memory_name = produced[input_id][3]
                claimed = device_of_port.setdefault(memory_name, member.device)
                if claimed != member.device:
                    for fallback in members:
                        self._run_singleton(
                            fallback, produced, report, roster, precomputed,
                            task_spans,
                        )
                    return

        # Gather every stage's (precomputed) result and its actual fill
        # latency.
        runs = []
        fills = []
        externals: list[list[tuple[str, str]]] = []  # (key, memory) pairs
        chain_local: dict[int, Relation] = {}
        for member in members:
            inputs = []
            external = []
            for input_id in member.inputs:
                if input_id in internal:
                    inputs.append(chain_local[input_id])
                else:
                    key, relation, _, memory_name = produced[input_id]
                    inputs.append(relation)
                    external.append((key, memory_name))
            device = self._device(member.device)
            run = precomputed[member.op_id]
            chain_local[member.op_id] = run.relation
            cost = actual_cost(
                member.node, inputs,
                device.capacity.max_rows, device.capacity.max_cols,
                element_bits=getattr(device, "element_bits", None),
            )
            fills.append(device.technology.pulses_to_seconds(cost.fill_pulses))
            runs.append(run)
            externals.append(external)

        # Per-stage stand-alone duration → (fill, stream) split.
        stages = []
        out_bytes = []
        for member, run, external, fill in zip(members, runs, externals, fills):
            nbytes_out = relation_bytes(run.relation, state.element_bits)
            out_bytes.append(nbytes_out)
            streams = [
                self._memory(memory_name).transfer_seconds(
                    self._memory(memory_name).size_of(key)
                )
                for key, memory_name in external
            ]
            if state.memories:
                streams.append(state.memories[0].transfer_seconds(nbytes_out))
            total = max([run.seconds] + streams)
            fill = min(fill, total)
            stages.append(StageCost(
                name=member.label, fill=fill, stream=total - fill
            ))

        # Stage k's window relative to the chain start: the prefix form
        # of the pipeline law — the last stage ends at Σ fill + max
        # stream, analyze_chain's pipelined makespan.
        offsets = PhysicalPlanner._stage_offsets(stages)

        # Each stage needs its own inputs (and release) only by the time
        # *it* starts — chain_start + lo_k — so an input arriving late to
        # a downstream stage does not hold the upstream stages back.
        start = 0.0
        for member, (lo, _) in zip(members, offsets):
            start = max(start, member.release - lo,
                        roster.free_at(member.device) - lo)
            for input_id in member.inputs:
                if input_id not in internal:
                    start = max(start, produced[input_id][2] - lo)

        # Fixed point over the chain start: every stage's external input
        # ports must be free over its window, plus one memory for the
        # tail's output.  Intermediate results never touch a memory —
        # they stream device→switch→device (§9), which is the point of
        # fusing — so the chain needs |externals| + 1 ports in total.
        all_external = {
            memory for external in externals for _, memory in external
        }
        tail_index = len(members) - 1
        tail_lo, tail_hi = offsets[tail_index]
        out_memory: Optional[MemoryModule] = None
        try:
            for _ in range(64):
                adjusted = start
                for (lo, hi), external in zip(offsets, externals):
                    duration = hi - lo
                    for memory_name in {memory for _, memory in external}:
                        adjusted = max(
                            adjusted,
                            state.crossbar.earliest_window(
                                memory_name, adjusted + lo, duration
                            ) - lo,
                        )
                out_memory, out_start = self._choose_memory(
                    out_bytes[tail_index], avoid=all_external,
                    ready=adjusted + tail_lo, duration=tail_hi - tail_lo,
                )
                adjusted = max(adjusted, out_start - tail_lo)
                if adjusted == start:
                    break
                start = adjusted
        except CapacityError:
            # Not enough distinct memory ports for the fused chain on
            # this machine — run its stages store-and-forward instead.
            for fallback in members:
                self._run_singleton(
                    fallback, produced, report, roster, precomputed,
                    task_spans,
                )
            return

        # Commit: claim ports, occupy devices, store the tail's output.
        metrics.inc("machine.chains.executed")
        with obs.span(
            "machine.chain", stages=len(members),
            chain=" | ".join(m.label for m in members),
        ) as chain_span:
            key_of: dict[int, str] = {}
            for k, (member, run, (lo, hi), external) in enumerate(
                zip(members, runs, offsets, externals)
            ):
                stage_start, stage_end = start + lo, start + hi
                with obs.span(
                    "machine.op", op=member.label, device=member.device,
                    kind=member.kind,
                ) as sp:
                    if task_spans is not None:
                        obs.adopt(task_spans.get(member.op_id))
                    key = self._new_key(member.node)
                    key_of[member.op_id] = key
                    external_memories = {memory for _, memory in external}
                    for memory_name in external_memories:
                        state.crossbar.establish(
                            memory_name, member.device, stage_start, stage_end
                        )
                    if k == tail_index:
                        memory_label = out_memory.name
                        out_memory.store(key, run.relation, out_bytes[k])
                        if out_memory.name not in external_memories:
                            state.crossbar.establish(
                                out_memory.name, member.device,
                                stage_start, stage_end,
                            )
                    else:
                        # Streamed straight into the next stage's array.
                        memory_label = f"->{members[k + 1].device}"
                    roster.occupy(member.device, stage_end)
                    input_keys = tuple(
                        key_of[i] if i in internal else produced[i][0]
                        for i in member.inputs
                    )
                    report.steps.append(ScheduledStep(
                        label=member.label,
                        device=member.device,
                        start=stage_start, end=stage_end,
                        output_key=key, output_memory=memory_label,
                        input_keys=input_keys,
                        pulses=run.pulses, block_runs=run.block_runs,
                        nbytes_out=out_bytes[k],
                    ))
                    produced[member.op_id] = (
                        key, run.relation, stage_end, memory_label
                    )
                    sp.set(
                        pulses=run.pulses, blocks=run.block_runs,
                        rows_out=len(run.relation), nbytes_out=out_bytes[k],
                        memory=memory_label,
                        sim_start=stage_start, sim_end=stage_end,
                    )
                metrics.inc("machine.ops.executed")
                metrics.observe(
                    "machine.op.sim_seconds", stage_end - stage_start
                )
            chain_span.set(
                sim_start=start + offsets[0][0], sim_end=start + tail_hi
            )

    def _memory(self, name: str) -> MemoryModule:
        for memory in self.state.memories:
            if memory.name == name:
                return memory
        raise PlanError(f"unknown memory {name!r}")
