"""The multi-tenant engine pool: shared devices, gated concurrency.

§9 closes with "a set of transactions" flowing through one machine; at
serving scale that set comes from many *tenants* at once.  The
:class:`EnginePool` is the shared middle layer of the split
architecture (catalog / session / pool):

* one **device complement** — the systolic arrays and CPU are pure
  (``execute`` is a function of the plan node and input relations), so
  every concurrent query runs on the same instances;
* one **plan cache** — keyed by plan structure *and* catalog content
  fingerprint, never by tenant name, so tenants with statistically
  identical catalogs share compiled physical plans;
* one **admission gate** — at most ``max_concurrent`` queries execute
  at a time; excess queries wait (highest priority first) and are
  refused with :class:`~repro.errors.AdmissionError` once their
  timeout lapses, §9's answer to an overloaded crossbar translated to
  the serving layer: shed load, don't queue without bound.

Determinism is non-negotiable: an admitted query executes against a
**fresh** :class:`~repro.machine.execution.MachineState` (its own
memories, crossbar, and device roster timeline), so its results *and*
its replayed timeline are bit-identical to running alone on a fresh
machine — no matter how many neighbours run beside it.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import OrderedDict
from typing import Callable, Optional, Sequence

from repro import obs
from repro.arrays.decomposition import ArrayCapacity
from repro.config import env_float
from repro.errors import AdmissionError, DeviceFaultError, PlanError
from repro.faults.recovery import CancelToken, run_with_deadline
from repro.obs import metrics
from repro.machine.catalog import Catalog
from repro.machine.crossbar import CrossbarSwitch
from repro.machine.execution import (
    MachineState,
    PlanExecutor,
    build_devices,
    place_resident,
    roster_fingerprint,
)
from repro.machine.memory import MemoryModule
from repro.machine.physical import (
    PhysicalPlan,
    PhysicalPlanner,
    plan_fingerprint,
)
from repro.machine.plan import PlanNode
from repro.machine.scheduler import ExecutionReport
from repro.perf.technology import PAPER_CONSERVATIVE, TechnologyModel
from repro.relational.relation import Relation

__all__ = ["AdmissionGate", "EnginePool", "PlanCache"]


class PlanCache:
    """A thread-safe LRU of compiled physical plans.

    The pool keys entries by ``(plan fingerprint, arrivals, pipeline
    flag, catalog content fingerprint, roster fingerprint)`` — nothing
    tenant-specific — so a hit can come from *another* tenant's earlier
    compile.  Emits the same ``machine.plan_cache.*`` metrics as the
    single-tenant machine.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 0:
            raise PlanError(f"plan cache maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, PhysicalPlan] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get(self, key: tuple) -> Optional[PhysicalPlan]:
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                metrics.inc("machine.plan_cache.hits")
                metrics.set_gauge(
                    "machine.plan_cache.size", len(self._entries)
                )
                return cached
            self._misses += 1
            metrics.inc("machine.plan_cache.misses")
            return None

    def put(self, key: tuple, plan: PhysicalPlan) -> None:
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            metrics.set_gauge("machine.plan_cache.size", len(self._entries))

    def info(self) -> dict[str, int]:
        """Hit/miss counters and occupancy, same shape as the machine's."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }


class AdmissionGate:
    """Bounds concurrent executions; waiters drain highest-priority first.

    ``acquire`` blocks until a slot frees (lower ``priority`` numbers
    win; ties drain in arrival order) or the timeout lapses, at which
    point it raises :class:`AdmissionError` — backpressure instead of
    an unbounded queue.
    """

    def __init__(self, limit: int, timeout: Optional[float] = None) -> None:
        if limit < 1:
            raise PlanError(f"admission limit must be >= 1, got {limit}")
        self.limit = limit
        self.timeout = timeout
        self._cv = threading.Condition()
        self._active = 0
        self._waiting: list[tuple[int, int]] = []  # heap of (priority, seq)
        self._seq = itertools.count()

    def acquire(
        self, priority: int = 0, timeout: Optional[float] = None
    ) -> None:
        """Claim a slot, waiting behind higher-priority arrivals."""
        if timeout is None:
            timeout = self.timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        ticket = (priority, next(self._seq))
        with self._cv:
            heapq.heappush(self._waiting, ticket)
            metrics.set_gauge("service.queue.depth", len(self._waiting))
            try:
                while (
                    self._active >= self.limit
                    or self._waiting[0] != ticket
                ):
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            metrics.inc("service.rejections")
                            raise AdmissionError(
                                f"no pool slot within {timeout:.3f}s "
                                f"({self._active}/{self.limit} active, "
                                f"{len(self._waiting)} waiting)"
                            )
                    self._cv.wait(remaining)
                heapq.heappop(self._waiting)
                self._active += 1
                metrics.inc("service.admissions")
                if self._active < self.limit and self._waiting:
                    self._cv.notify_all()  # next head may also fit
            finally:
                if ticket in self._waiting:  # timed out: withdraw
                    self._waiting.remove(ticket)
                    heapq.heapify(self._waiting)
                    self._cv.notify_all()
                metrics.set_gauge("service.queue.depth", len(self._waiting))

    def release(self) -> None:
        """Return a slot and wake the best waiter."""
        with self._cv:
            self._active -= 1
            self._cv.notify_all()

    def stats(self) -> dict[str, int]:
        with self._cv:
            return {
                "limit": self.limit,
                "active": self._active,
                "waiting": len(self._waiting),
            }


class EnginePool:
    """Shared execution resources serving many tenants' sessions.

    The pool owns what §9's machine room owns — the device complement,
    the compile pipeline and its cache, the host thread budget — while
    every admitted query gets private simulated state.  Open a
    :class:`~repro.machine.session.Session` per tenant (or several) and
    issue queries through it; the pool admits, compiles, executes, and
    accounts for them.
    """

    def __init__(
        self,
        memories: int = 4,
        devices: Sequence[tuple] = None,
        capacity: ArrayCapacity = ArrayCapacity(max_rows=63, max_cols=8),
        technology: TechnologyModel = PAPER_CONSERVATIVE,
        memory_bytes: int = 4 * 1024 * 1024,
        element_bits: int = 32,
        backend=None,
        host_workers: Optional[int] = None,
        plan_cache_size: int = 64,
        max_concurrent: int = 4,
        admission_timeout: Optional[float] = 30.0,
        roster_fairness: bool = True,
        faults=None,
        query_deadline: Optional[float] = None,
    ) -> None:
        from repro.machine.system import DEFAULT_DEVICES  # avoid cycle

        if memories < 2:
            raise PlanError(
                "the machine needs at least two memories (§9: output is "
                "pipelined back into *another* memory)"
            )
        self.memory_count = memories
        self.memory_bytes = memory_bytes
        self.element_bits = element_bits
        self.host_workers = host_workers
        self.roster_fairness = roster_fairness
        self.devices = build_devices(
            devices if devices is not None else DEFAULT_DEVICES,
            capacity, technology, backend,
        )
        self._roster_fingerprint = roster_fingerprint(self.devices)
        #: Active :class:`~repro.faults.plan.FaultPlan` (None = no faults).
        self.faults = faults
        #: Per-query wall-clock budget; a query that outlives it is
        #: cancelled with :class:`~repro.errors.DeadlineError` and its
        #: slot freed.  Defaults to ``REPRO_QUERY_DEADLINE`` (unset =
        #: no deadline).
        self.query_deadline = (
            query_deadline
            if query_deadline is not None
            else env_float("REPRO_QUERY_DEADLINE", None, minimum=0.0)
        )
        self.plan_cache = PlanCache(plan_cache_size)
        self.gate = AdmissionGate(max_concurrent, admission_timeout)
        self._lock = threading.Lock()
        self._catalogs: dict[str, Catalog] = {}
        self._sharded_catalogs: dict[tuple, "ShardedCatalog"] = {}
        self._tenant_queries: dict[str, int] = {}

    # -- tenancy -----------------------------------------------------------

    def catalog(self, tenant: str = "default") -> Catalog:
        """The (lazily created) catalog for a tenant."""
        with self._lock:
            cat = self._catalogs.get(tenant)
            if cat is None:
                cat = Catalog(tenant=tenant, element_bits=self.element_bits)
                self._catalogs[tenant] = cat
            return cat

    def sharded_catalog(
        self,
        tenant: str,
        shards: int,
        strategy: str = "hash",
        partitioner=None,
    ) -> "ShardedCatalog":
        """The tenant's sharded catalog for one (shards, strategy) layout.

        Lazily created and shared, like :meth:`catalog`: two sessions
        opened with the same shard layout see the same placements.
        """
        from repro.shard.catalog import ShardedCatalog

        key = (tenant, shards, strategy)
        with self._lock:
            cat = self._sharded_catalogs.get(key)
            if cat is None:
                cat = ShardedCatalog(
                    tenant=tenant, shards=shards, strategy=strategy,
                    element_bits=self.element_bits,
                    partitioner=partitioner,
                )
                self._sharded_catalogs[key] = cat
            return cat

    def session(
        self,
        tenant: str = "default",
        priority: int = 0,
        parallel: Optional[bool] = None,
        shards: Optional[int] = None,
        shard_strategy: Optional[str] = None,
        partitioner=None,
    ) -> "Session":
        """Open a session bound to a tenant's catalog.

        ``shards > 1`` opens it against the tenant's sharded catalog
        instead; see :class:`~repro.machine.session.Session`.
        """
        from repro.machine.session import Session

        return Session(
            self, self.catalog(tenant), priority=priority, parallel=parallel,
            shards=shards, shard_strategy=shard_strategy,
            partitioner=partitioner,
        )

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._catalogs)

    # -- compilation -------------------------------------------------------

    def compile(
        self,
        catalog: Catalog,
        plans: Sequence[PlanNode] | PlanNode,
        arrivals: Optional[Sequence[float]] = None,
        pipeline: bool = True,
        use_cache: bool = True,
        devices: Optional[Sequence] = None,
    ) -> PhysicalPlan:
        """Lower logical plans against a tenant's catalog.

        Cache entries are keyed by the catalog's *content fingerprint*
        (not its tenant or version counter), so two tenants whose
        catalogs agree on names, placement, cardinalities, and schemas
        share entries — the cross-tenant reuse the serving layer is
        for.  ``devices`` plans against a reduced roster (the recovery
        path after a quarantine); its fingerprint keys the cache, so
        degraded plans never collide with full-roster plans.
        """
        if isinstance(plans, PlanNode):
            plans = [plans]
        metrics.inc("machine.compile.calls")
        with obs.span(
            "machine.compile", plans=len(plans), pipeline=bool(pipeline),
            tenant=catalog.tenant,
        ) as sp:
            view = _PlannerView(self, catalog, devices)
            if not use_cache or self.plan_cache.maxsize == 0:
                physical = PhysicalPlanner(view).compile(
                    plans, arrivals, pipeline=pipeline
                )
                sp.set(cached=False, ops=len(physical.ops))
                return physical
            key = (
                plan_fingerprint(plans),
                tuple(arrivals) if arrivals is not None else None,
                bool(pipeline),
                catalog.content_fingerprint(),
                self._roster_fingerprint if devices is None
                else roster_fingerprint(devices),
            )
            cached = self.plan_cache.get(key)
            if cached is not None:
                sp.set(cached=True, ops=len(cached.ops))
                return cached
            physical = PhysicalPlanner(view).compile(
                plans, arrivals, pipeline=pipeline
            )
            self.plan_cache.put(key, physical)
            sp.set(cached=False, ops=len(physical.ops))
            return physical

    # -- execution ---------------------------------------------------------

    def fresh_state(
        self, catalog: Catalog, devices: Optional[Sequence] = None
    ) -> MachineState:
        """A private simulated machine for one query.

        Fresh memories, crossbar, and resident placement (preloads in
        catalog order, emptiest module first) — byte-for-byte the state
        a fresh single-tenant machine would present, which is what
        makes pooled execution bit-identical to running alone.  Only
        the (pure) devices are shared.  ``devices`` substitutes a
        reduced roster (recovery after a quarantine).
        """
        roster = list(devices) if devices is not None else self.devices
        memories = [
            MemoryModule(f"mem{m}", capacity_bytes=self.memory_bytes)
            for m in range(self.memory_count)
        ]
        crossbar = CrossbarSwitch(
            [m.name for m in memories],
            [d.name for d in roster] + ["disk"],
        )
        state = MachineState(
            self.element_bits, catalog.disk, memories, roster, crossbar
        )
        for name, relation in catalog.preloaded():
            place_resident(state, name, relation)
        return state

    def healthy_devices(self) -> Optional[list]:
        """The non-quarantined roster, or None when all devices are
        healthy (the common case keeps the precomputed fingerprint and
        the full-roster plan-cache entries)."""
        if self.faults is None:
            return None
        quarantined = set(self.faults.quarantined())
        if not quarantined:
            return None
        return [d for d in self.devices if d.name not in quarantined]

    def execute(
        self,
        catalog: Catalog,
        plans: Sequence[PlanNode] | PlanNode,
        arrivals: Optional[Sequence[float]] = None,
        pipeline: bool = True,
        parallel: bool = True,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> tuple[list[Relation], ExecutionReport]:
        """Admit, compile, and run one query for a tenant.

        Blocks at the admission gate when ``max_concurrent`` queries
        are already executing; raises
        :class:`~repro.errors.AdmissionError` if no slot frees within
        the timeout.
        """
        if isinstance(plans, PlanNode):
            plans = [plans]
        self.gate.acquire(priority=priority, timeout=timeout)
        started = time.perf_counter()
        cancel = CancelToken() if self.query_deadline is not None else None
        try:
            results, report = run_with_deadline(
                lambda: self._run_admitted(
                    catalog, plans, arrivals, pipeline, parallel, priority,
                    cancel,
                ),
                self.query_deadline,
                cancel=cancel,
                label=f"query[{catalog.tenant}]",
            )
        finally:
            # Freed even when the deadline fires: the cancelled worker
            # holds only a fresh private MachineState, so releasing the
            # slot before it unwinds cannot corrupt shared resources.
            self.gate.release()
        self.record_query(catalog.tenant, time.perf_counter() - started)
        return results, report

    def _run_admitted(
        self,
        catalog: Catalog,
        plans: Sequence[PlanNode],
        arrivals: Optional[Sequence[float]],
        pipeline: bool,
        parallel: bool,
        priority: int,
        cancel: Optional[CancelToken],
    ) -> tuple[list[Relation], ExecutionReport]:
        """Compile and run one admitted query, replanning around
        quarantined devices — graceful degradation to fewer (slower)
        devices rather than failure."""
        replans = 0
        while True:
            physical: Optional[PhysicalPlan] = None
            devices = self.healthy_devices()
            try:
                with obs.span(
                    "service.query", tenant=catalog.tenant,
                    plans=len(plans), priority=priority,
                ) as sp:
                    try:
                        physical = self.compile(
                            catalog, plans, arrivals, pipeline=pipeline,
                            devices=devices,
                        )
                    except PlanError as exc:
                        if devices is None:
                            raise
                        # device=None marks this permanent wrapper as
                        # non-replannable below.
                        raise DeviceFaultError(
                            f"no healthy device can run the plan after "
                            f"quarantining "
                            f"{self.faults.quarantined()}",
                            quarantined=True,
                        ) from exc
                    executor = PlanExecutor(
                        self.fresh_state(catalog, devices=devices),
                        host_workers=self.host_workers,
                        roster_fairness=self.roster_fairness,
                        faults=self.faults,
                        cancel=cancel,
                        fault_scope=catalog.tenant,
                    )
                    results, report = executor.run_physical(
                        physical, parallel=parallel
                    )
                    sp.set(makespan_ms=report.makespan * 1e3)
                return results, report
            except DeviceFaultError as exc:
                if (
                    not exc.quarantined
                    or exc.device is None
                    or replans >= len(self.devices)
                ):
                    raise
                replans += 1
                metrics.inc("faults.replans")
                if physical is not None:
                    self._count_redispatches(
                        catalog, plans, arrivals, pipeline, physical
                    )

    def _count_redispatches(
        self,
        catalog: Catalog,
        plans: Sequence[PlanNode],
        arrivals: Optional[Sequence[float]],
        pipeline: bool,
        previous: PhysicalPlan,
    ) -> None:
        """Count ops whose device changed in the post-quarantine replan
        (``faults.redispatches`` — the visible cost of degradation)."""
        devices = self.healthy_devices()
        if devices is None:
            return
        try:
            replanned = self.compile(
                catalog, plans, arrivals, pipeline=pipeline, devices=devices
            )
        except PlanError:
            return  # the replan loop will surface this properly
        moved = sum(
            1
            for old, new in zip(previous.ops, replanned.ops)
            if old.device != new.device
        )
        if moved:
            metrics.inc("faults.redispatches", moved)

    # -- accounting --------------------------------------------------------

    def record_query(self, tenant: str, seconds: float) -> None:
        """Account one completed query against a tenant.

        Shared by the pool's own execute path and the shard layer's
        :class:`~repro.shard.executor.ShardedExecutor`, so a sharded
        query counts once (not once per shard) in the service metrics
        and ``tenant_stats``.
        """
        metrics.inc("service.queries")
        metrics.inc("service.tenant.queries")
        metrics.observe("service.query.seconds", seconds)
        with self._lock:
            self._tenant_queries[tenant] = (
                self._tenant_queries.get(tenant, 0) + 1
            )

    def plan_cache_info(self) -> dict[str, int]:
        """Hit/miss counters and occupancy of the shared plan cache."""
        return self.plan_cache.info()

    def tenant_stats(self) -> dict[str, int]:
        """Completed query count per tenant."""
        with self._lock:
            return dict(self._tenant_queries)

    def stats(self) -> dict:
        """One snapshot of the pool for ``repro serve`` status replies."""
        return {
            "tenants": self.tenants(),
            "tenant_queries": self.tenant_stats(),
            "plan_cache": self.plan_cache_info(),
            "admission": self.gate.stats(),
            "query_deadline": self.query_deadline,
            "faults": (
                self.faults.snapshot() if self.faults is not None else None
            ),
        }

    def __repr__(self) -> str:
        kinds = ", ".join(d.name for d in self.devices)
        return (
            f"EnginePool({self.memory_count} memories/query; {kinds}; "
            f"max_concurrent={self.gate.limit})"
        )


class _PlannerView:
    """The machine surface :class:`PhysicalPlanner` plans against.

    The planner duck-types its machine: it reads the disk, the
    resident map, element width, memory bandwidth, and the device
    list.  This view presents one tenant's catalog over the pool's
    shared devices, with a template memory standing in for bandwidth
    (all the pool's modules are identical).
    """

    def __init__(
        self,
        pool: EnginePool,
        catalog: Catalog,
        devices: Optional[Sequence] = None,
    ) -> None:
        self.disk = catalog.disk
        self.element_bits = pool.element_bits
        self.devices = list(devices) if devices is not None else pool.devices
        self.memories = [
            MemoryModule("mem0", capacity_bytes=pool.memory_bytes)
        ]
        self._resident = {
            name: (f"resident:{name}", relation, 0.0, None)
            for name, relation in catalog.preloaded()
        }
