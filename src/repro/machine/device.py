"""Systolic devices: the operator boxes of Fig 9-1.

A device is one physical array of a fixed size (its
:class:`~repro.arrays.decomposition.ArrayCapacity`) plus the §8
technology that converts pulse counts to seconds.  Problems larger than
the device run blocked (§8's decomposition); the device reports how
many sub-problems it executed and the total pulse count.

A comparison device built with ``element_bits`` is §8's **bit-level**
variant of the same box: its columns are bit comparators, every tuple
streams as its MSB-first bit expansion
(:func:`~repro.bitlevel.bits.expand_tuple`), and its capacity's
``max_cols`` counts bit comparators rather than word comparators.  Bit
devices execute the equality-based comparison operations only — the
word→bit transformation is mechanical exactly for those — and report
the pulse counts :func:`repro.perf.cost.bit_comparison_cost` predicts.

The CPU device models the conventional host of Fig 9-1: it executes
selections (and nothing else — everything the paper makes systolic
*is* systolic here) at a configurable per-tuple cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arrays.decomposition import (
    ArrayCapacity,
    BlockedReport,
    blocked_difference,
    blocked_divide,
    blocked_intersection,
    blocked_join,
    blocked_pair_matrix,
    blocked_remove_duplicates,
    blocked_union,
)
from repro.bitlevel.bits import expand_tuple
from repro import obs
from repro.errors import PlanError
from repro.machine.plan import (
    DEVICE_COMPARISON,
    DEVICE_CPU,
    DEVICE_DIVISION,
    DEVICE_JOIN,
    Dedup,
    Difference,
    Divide,
    Intersect,
    Join,
    PlanNode,
    Project,
    Select,
    Union,
)
from repro.obs import metrics
from repro.perf.technology import PAPER_CONSERVATIVE, TechnologyModel
from repro.relational import algebra
from repro.relational.relation import Relation

__all__ = ["DeviceRun", "SystolicDevice", "CpuDevice"]


@dataclass
class DeviceRun:
    """Outcome of one operation on one device."""

    relation: Relation
    pulses: int
    seconds: float
    block_runs: int


class SystolicDevice:
    """One fixed-size systolic array attached to the crossbar."""

    def __init__(
        self,
        name: str,
        kind: str,
        capacity: ArrayCapacity = ArrayCapacity(max_rows=63, max_cols=8),
        technology: TechnologyModel = PAPER_CONSERVATIVE,
        backend=None,
        element_bits: Optional[int] = None,
    ) -> None:
        if kind not in (DEVICE_COMPARISON, DEVICE_JOIN, DEVICE_DIVISION):
            raise PlanError(
                f"device {name!r}: unknown kind {kind!r}; systolic kinds are "
                f"{DEVICE_COMPARISON!r}, {DEVICE_JOIN!r}, {DEVICE_DIVISION!r}"
            )
        if element_bits is not None:
            if element_bits < 1:
                raise PlanError(
                    f"device {name!r}: element_bits must be >= 1, got "
                    f"{element_bits}"
                )
            if kind != DEVICE_COMPARISON:
                raise PlanError(
                    f"device {name!r}: bit-level devices are §8 comparison "
                    f"arrays (equality only); {kind!r} needs word cells"
                )
        self.name = name
        self.kind = kind
        self.capacity = capacity
        self.technology = technology
        #: execution engine for block runs ("pulse", "lattice",
        #: "bitplane", or an Engine instance); pulse counts and results
        #: are identical.
        self.backend = backend
        #: bit width of one element on a §8 bit-level device (None for
        #: a word device).  Tuples stream as their MSB-first expansions
        #: and ``capacity.max_cols`` counts bit comparators.
        self.element_bits = element_bits

    def execute(self, node: PlanNode, inputs: list[Relation]) -> DeviceRun:
        """Run one plan node's operation on this device."""
        with obs.span(
            "device.execute", device=self.name, kind=self.kind,
            op=node.describe(),
        ) as sp:
            relation, report = self._dispatch(node, inputs)
            sp.set(
                pulses=report.total_pulses, blocks=report.block_runs,
                rows_out=len(relation),
            )
        metrics.inc("device.executions")
        metrics.inc("device.block_runs", report.block_runs)
        metrics.inc("device.busy_pulses", report.total_pulses)
        return DeviceRun(
            relation=relation,
            pulses=report.total_pulses,
            seconds=self.technology.pulses_to_seconds(report.total_pulses),
            block_runs=report.block_runs,
        )

    def _dispatch(
        self, node: PlanNode, inputs: list[Relation]
    ) -> tuple[Relation, BlockedReport]:
        if node.device_kind != self.kind:
            raise PlanError(
                f"device {self.name!r} ({self.kind}) cannot execute "
                f"{node.describe()} ({node.device_kind})"
            )
        if self.element_bits is not None:
            return self._dispatch_bits(node, inputs)
        backend = self.backend
        if isinstance(node, Intersect):
            return blocked_intersection(
                inputs[0], inputs[1], self.capacity, backend=backend
            )
        if isinstance(node, Difference):
            return blocked_difference(
                inputs[0], inputs[1], self.capacity, backend=backend
            )
        if isinstance(node, Union):
            return blocked_union(
                inputs[0], inputs[1], self.capacity, backend=backend
            )
        if isinstance(node, Dedup):
            return blocked_remove_duplicates(
                inputs[0].to_multi(), self.capacity, backend=backend
            )
        if isinstance(node, Project):
            # The column drop happens during retrieval (§5); the array
            # only deduplicates the reduced multi-relation.
            reduced = algebra.project_multi(inputs[0], list(node.columns))
            return blocked_remove_duplicates(
                reduced, self.capacity, backend=backend
            )
        if isinstance(node, Join):
            return blocked_join(
                inputs[0], inputs[1], list(node.on), self.capacity,
                ops=list(node.ops) if node.ops is not None else None,
                backend=backend,
            )
        if isinstance(node, Divide):
            return blocked_divide(
                inputs[0], inputs[1], self.capacity,
                a_value=node.a_value, a_group=node.a_group,
                b_value=node.b_value, backend=backend,
            )
        raise PlanError(
            f"device {self.name!r} has no implementation for {node.describe()}"
        )

    # -- §8 bit-level execution ---------------------------------------------

    def _bit_matrix(
        self, a_tuples, b_tuples, t_init=lambda i, j: True
    ) -> tuple[list[list[bool]], BlockedReport]:
        """The blocked T matrix over the MSB-first bit expansions.

        Same §8 decomposition as a word device, with ``max_cols``
        bounding *bit* columns — so the reported pulses equal
        :func:`repro.perf.cost.bit_comparison_cost` exactly.
        """
        width = self.element_bits
        expanded_a = [expand_tuple(row, width) for row in a_tuples]
        expanded_b = [expand_tuple(row, width) for row in b_tuples]
        return blocked_pair_matrix(
            expanded_a, expanded_b, self.capacity, t_init=t_init,
            backend=self.backend,
        )

    def _dispatch_bits(
        self, node: PlanNode, inputs: list[Relation]
    ) -> tuple[Relation, BlockedReport]:
        if isinstance(node, (Intersect, Difference)):
            a, b = inputs
            a.schema.require_union_compatible(b.schema)
            keep_members = isinstance(node, Intersect)
            if not a:
                return Relation(a.schema), BlockedReport()
            if not b:
                rows = () if keep_members else a.tuples
                return Relation(a.schema, rows), BlockedReport()
            matrix, report = self._bit_matrix(a.tuples, b.tuples)
            members = (
                row for row, hit in zip(a.tuples, map(any, matrix))
                if hit == keep_members
            )
            return Relation(a.schema, members), report
        if isinstance(node, (Union, Dedup, Project)):
            if isinstance(node, Union):
                inputs[0].schema.require_union_compatible(inputs[1].schema)
                multi = inputs[0].to_multi().concat(inputs[1])
            elif isinstance(node, Dedup):
                multi = inputs[0].to_multi()
            else:
                multi = algebra.project_multi(inputs[0], list(node.columns))
            if not multi:
                return Relation(multi.schema), BlockedReport()
            matrix, report = self._bit_matrix(
                multi.tuples, multi.tuples, t_init=lambda i, j: j < i
            )
            kept = (
                row for row, dropped in zip(multi.tuples, map(any, matrix))
                if not dropped
            )
            return Relation(multi.schema, kept), report
        raise PlanError(
            f"bit-level device {self.name!r} is equality-only; "
            f"{node.describe()} needs a word device"
        )

    def __repr__(self) -> str:
        bits = (
            f", {self.element_bits}b" if self.element_bits is not None else ""
        )
        return (
            f"SystolicDevice({self.name!r}, {self.kind}, "
            f"{self.capacity.max_rows}×{self.capacity.max_cols}{bits})"
        )


class CpuDevice:
    """The conventional host: selections at a per-tuple cost."""

    kind = DEVICE_CPU

    def __init__(self, name: str = "cpu", tuple_op_ns: float = 10_000.0) -> None:
        if tuple_op_ns <= 0:
            raise PlanError(f"tuple_op_ns must be positive, got {tuple_op_ns}")
        self.name = name
        self.tuple_op_ns = tuple_op_ns

    def execute(self, node: PlanNode, inputs: list[Relation]) -> DeviceRun:
        """Run a selection over its input, one tuple at a time."""
        if not isinstance(node, Select):
            raise PlanError(
                f"the CPU device only executes selections, not "
                f"{node.describe()}; route array work to a systolic device"
            )
        source = inputs[0]
        with obs.span(
            "device.execute", device=self.name, kind=self.kind,
            op=node.describe(),
        ) as sp:
            relation = algebra.select(source, node.column, node.op, node.value)
            sp.set(rows_out=len(relation))
        metrics.inc("device.executions")
        seconds = len(source) * self.tuple_op_ns * 1e-9
        return DeviceRun(
            relation=relation, pulses=0, seconds=seconds, block_runs=0
        )

    def __repr__(self) -> str:
        return f"CpuDevice({self.name!r}, {self.tuple_op_ns:.0f} ns/tuple)"
