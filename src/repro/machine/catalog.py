"""Per-tenant relation catalogs for the layered machine.

The god-object machine used to own its base relations directly; the
layered architecture pulls them out into a :class:`Catalog` — one per
tenant — so an :class:`~repro.machine.pool.EnginePool` can serve many
tenants' queries over shared devices without their data ever mixing.

A catalog holds two populations, mirroring §9's storage hierarchy:

* **stored** relations live on the tenant's :class:`MachineDisk` and
  are read (serially, possibly with on-track selection) at query time;
* **preloaded** relations model a prior transaction's output still
  resident in a memory module — at execution start the pool places
  them in the fresh machine state's memories, ready at time 0.

Catalogs are versioned (every mutation bumps ``version``) and expose a
*content fingerprint* used by the shared plan cache: two tenants whose
catalogs agree on everything the planner looks at — relation names,
placement, cardinalities, schemas, the disk model — provably compile a
given logical plan to the same physical plan, so they can share cache
entries even though they never share data.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import PlanError
from repro.machine.disk import MachineDisk
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.store import RelationStore

__all__ = ["Catalog"]


class Catalog:
    """The named relations one tenant can query.

    Thread-safe: a tenant's loader threads may :meth:`store` and
    :meth:`preload` concurrently with the pool reading the catalog to
    compile and execute.  Mutating a catalog invalidates cached plans
    that were compiled against it (the plan-cache key includes the
    content fingerprint), never the cache entries of other tenants.
    """

    def __init__(
        self,
        tenant: str = "default",
        disk: Optional[MachineDisk] = None,
        element_bits: int = 32,
    ) -> None:
        self.tenant = tenant
        self.disk = disk if disk is not None else MachineDisk(
            element_bits=element_bits
        )
        self._lock = threading.RLock()
        #: insertion-ordered: preload order decides memory placement.
        self._preloaded: dict[str, Relation] = {}
        self._version = 0

    # -- mutation ----------------------------------------------------------

    def store(self, name: str, relation: Relation) -> None:
        """Place a base relation on the tenant's disk."""
        with self._lock:
            self.disk.store(name, relation)
            self._version += 1

    def preload(self, name: str, relation: Relation) -> None:
        """Mark a relation memory-resident (ready at time 0) for queries."""
        with self._lock:
            if name in self._preloaded:
                raise PlanError(f"relation {name!r} is already resident")
            self._preloaded[name] = relation
            self._version += 1

    def attach_store(self, store: "RelationStore") -> None:
        """Back the tenant's disk with a persistent relation store."""
        with self._lock:
            self.disk.attach_store(store)
            self._version += 1

    def persist(self, name: str, relation: Relation, **write_kwargs) -> None:
        """Write a relation through to the attached persistent store.

        Unlike :meth:`store` the tuples land on the host filesystem —
        the relation survives process restarts and is read back chunk
        by chunk (with index pruning) at query time.  ``write_kwargs``
        pass through to :meth:`repro.store.RelationStore.write`
        (``chunk_rows``, ``index_columns``).
        """
        with self._lock:
            store = self.disk.backing_store
            if store is None:
                raise PlanError(
                    f"catalog {self.tenant!r} has no persistent store "
                    f"attached; call attach_store first"
                )
            store.write(name, relation, **write_kwargs)
            self._version += 1

    # -- inspection --------------------------------------------------------

    @property
    def version(self) -> int:
        """Bumped by every :meth:`store`/:meth:`preload`."""
        with self._lock:
            return self._version

    def names(self) -> list[str]:
        """Every queryable relation name (stored then preloaded)."""
        with self._lock:
            stored = list(self.disk.names())
            return stored + [
                n for n in self._preloaded if n not in set(stored)
            ]

    def relation(self, name: str) -> Relation:
        """Look up a relation by name (preloaded shadows stored)."""
        with self._lock:
            if name in self._preloaded:
                return self._preloaded[name]
            return self.disk.relation(name)

    def preloaded(self) -> list[tuple[str, Relation]]:
        """The memory-resident relations, in preload order."""
        with self._lock:
            return list(self._preloaded.items())

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._preloaded or (
                isinstance(name, str) and self.disk.holds(name)
            )

    def content_fingerprint(self) -> tuple:
        """Everything the physical planner reads, as a hashable value.

        Covers the disk's timing model and on-track-logic flag plus,
        per relation: name, placement (disk vs memory-resident),
        cardinality, and schema (column and domain names).  When a
        persistent store is attached, its per-relation manifest digests
        ride along, so rewriting stored bytes (new data, chunking, or
        index) invalidates cached plans even at unchanged cardinality.
        Two catalogs with equal fingerprints compile any logical plan
        to the same physical plan, which is what lets the pool's plan
        cache be shared *across* tenants.
        """

        def schema_key(schema) -> tuple:
            return tuple(
                (name, domain.name)
                for name, domain in zip(schema.names, schema.domains)
            )

        def schema_of(relation: Relation) -> tuple:
            return schema_key(relation.schema)

        with self._lock:
            stored = tuple(
                (name, "disk", rows, schema_key(schema))
                for name in sorted(self.disk.names())
                for rows, _, schema in (self.disk.profile(name),)
            )
            resident = tuple(
                (name, "memory", len(rel), schema_of(rel))
                for name, rel in sorted(self._preloaded.items())
            )
            return (
                repr(self.disk.model),
                self.disk.logic_per_track,
                stored,
                resident,
                self.disk.store_fingerprint(),
            )

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Catalog(tenant={self.tenant!r}, "
                f"{len(self.disk.names())} stored, "
                f"{len(self._preloaded)} resident, v{self._version})"
            )
