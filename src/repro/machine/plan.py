"""Query plans for the integrated systolic system (§9).

A transaction is a tree (DAG, if inputs are shared) of relational
operations over named base relations.  §9's machine executes one such
plan by configuring the crossbar so each operation streams from its
input memories through the right systolic device into an output
memory; independent operations "may be run concurrently".

Device kinds (matching the device boxes of Fig 9-1):

* ``comparison`` — the intersection-array hardware, which also serves
  difference, remove-duplicates, union, and projection (§4.3, §5);
* ``join`` — the Fig 6-1 join array;
* ``division`` — the Fig 7-2 division array;
* ``cpu`` — the conventional host for selections and other odd jobs
  (the "CPU" box of Fig 9-1); selections can also ride along a
  logic-per-track disk read (§9, ref [8]).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import PlanError
from repro.relational.schema import ColumnRef

__all__ = [
    "DEVICE_COMPARISON",
    "DEVICE_JOIN",
    "DEVICE_DIVISION",
    "DEVICE_CPU",
    "PlanNode",
    "Base",
    "Intersect",
    "Difference",
    "Union",
    "Dedup",
    "Project",
    "Join",
    "Divide",
    "Select",
    "walk",
]

DEVICE_COMPARISON = "comparison"
DEVICE_JOIN = "join"
DEVICE_DIVISION = "division"
DEVICE_CPU = "cpu"


class PlanNode(ABC):
    """One operation in a query plan."""

    @property
    @abstractmethod
    def children(self) -> tuple["PlanNode", ...]:
        """Input sub-plans, left to right."""

    @property
    @abstractmethod
    def device_kind(self) -> str:
        """Which device class executes this node."""

    @abstractmethod
    def describe(self) -> str:
        """Short operator label for timelines and error messages."""

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.children)
        return f"{self.describe()}({inner})" if inner else self.describe()


@dataclass(frozen=True, repr=False)
class Base(PlanNode):
    """A named base relation, resident on disk."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise PlanError("a base relation requires a name")

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return ()

    @property
    def device_kind(self) -> str:
        return DEVICE_CPU  # loading is not an array operation

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class _Binary(PlanNode):
    left: PlanNode
    right: PlanNode

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, repr=False)
class Intersect(_Binary):
    """``A ∩ B`` (§4)."""

    @property
    def device_kind(self) -> str:
        return DEVICE_COMPARISON

    def describe(self) -> str:
        return "intersect"


@dataclass(frozen=True, repr=False)
class Difference(_Binary):
    """``A − B`` (§4.3)."""

    @property
    def device_kind(self) -> str:
        return DEVICE_COMPARISON

    def describe(self) -> str:
        return "difference"


@dataclass(frozen=True, repr=False)
class Union(_Binary):
    """``A ∪ B`` (§5)."""

    @property
    def device_kind(self) -> str:
        return DEVICE_COMPARISON

    def describe(self) -> str:
        return "union"


@dataclass(frozen=True, repr=False)
class Dedup(PlanNode):
    """remove-duplicates (§5)."""

    child: PlanNode

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def device_kind(self) -> str:
        return DEVICE_COMPARISON

    def describe(self) -> str:
        return "dedup"


@dataclass(frozen=True, repr=False)
class Project(PlanNode):
    """Projection over a column list (§5)."""

    child: PlanNode
    columns: tuple[ColumnRef, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise PlanError("a projection requires at least one column")

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def device_kind(self) -> str:
        return DEVICE_COMPARISON

    def describe(self) -> str:
        return f"project[{','.join(map(str, self.columns))}]"


@dataclass(frozen=True, repr=False)
class Join(_Binary):
    """(θ-)join over column pairs (§6)."""

    on: tuple[tuple[ColumnRef, ColumnRef], ...] = ()
    ops: Optional[tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.on:
            raise PlanError("a join requires at least one column pair")
        if self.ops is not None and len(self.ops) != len(self.on):
            raise PlanError(
                f"a join needs one operator per column pair: "
                f"{len(self.ops)} ops for {len(self.on)} pairs"
            )

    @property
    def device_kind(self) -> str:
        return DEVICE_JOIN

    def describe(self) -> str:
        ops = self.ops or ("==",) * len(self.on)
        conds = ",".join(
            f"{ca}{op}{cb}" for (ca, cb), op in zip(self.on, ops)
        )
        return f"join[{conds}]"


@dataclass(frozen=True, repr=False)
class Divide(_Binary):
    """``A ÷ B`` (§7)."""

    a_value: ColumnRef = 1
    a_group: Optional[ColumnRef] = None
    b_value: ColumnRef = 0

    @property
    def device_kind(self) -> str:
        return DEVICE_DIVISION

    def describe(self) -> str:
        return "divide"


@dataclass(frozen=True, repr=False)
class Select(PlanNode):
    """Selection σ — CPU work, or free on a logic-per-track disk read."""

    child: PlanNode
    column: ColumnRef = 0
    op: str = "=="
    value: int = 0

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def device_kind(self) -> str:
        return DEVICE_CPU

    def describe(self) -> str:
        return f"select[{self.column}{self.op}{self.value}]"


def walk(plan: PlanNode) -> list[PlanNode]:
    """Post-order traversal (children before parents), deduplicated.

    Shared sub-plans appear once — the machine computes them once and
    reuses the stored result.
    """
    seen: dict[int, PlanNode] = {}
    order: list[PlanNode] = []

    def visit(node: PlanNode) -> None:
        if id(node) in seen:
            return
        for child in node.children:
            visit(child)
        seen[id(node)] = node
        order.append(node)

    visit(plan)
    return order
