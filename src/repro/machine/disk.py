"""Mass storage for the integrated system (Fig 9-1, §9).

Base relations live on a moving-head disk (the §8 model: whole-cylinder
reads at rotation rate).  "Disks with 'logic-per-track' capabilities
[8] can of course be incorporated into the system, so that some simple
queries never have to be processed outside the disks" — with
``logic_per_track=True``, a selection predicate is applied *during* the
read at no extra cost and only matching tuples leave the disk.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PlanError
from repro.obs import metrics
from repro.perf.disk import DiskModel, PAPER_DISK
from repro.relational.algebra import COMPARISON_OPS
from repro.relational.relation import Relation
from repro.relational.schema import ColumnRef

__all__ = ["MachineDisk"]


class MachineDisk:
    """A disk holding the machine's base relations."""

    def __init__(
        self,
        model: DiskModel = PAPER_DISK,
        logic_per_track: bool = False,
        element_bits: int = 32,
    ) -> None:
        self.model = model
        self.logic_per_track = logic_per_track
        self.element_bits = element_bits
        self._catalog: dict[str, Relation] = {}

    # -- catalog --------------------------------------------------------------

    def store(self, name: str, relation: Relation) -> None:
        """Write (or overwrite) a base relation."""
        if not name:
            raise PlanError("a stored relation requires a name")
        self._catalog[name] = relation

    def names(self) -> list[str]:
        """Names of stored relations."""
        return sorted(self._catalog)

    def holds(self, name: str) -> bool:
        """Whether a base relation exists."""
        return name in self._catalog

    def relation(self, name: str) -> Relation:
        """The stored relation itself, without modelling a timed read.

        The physical planner uses this to learn exact base sizes and
        schemas while costing a plan; :meth:`read` remains the only way
        data *moves* off the disk.
        """
        try:
            return self._catalog[name]
        except KeyError:
            raise PlanError(
                f"no base relation named {name!r}; have {self.names()}"
            ) from None

    def relation_bytes(self, relation: Relation) -> int:
        """On-disk size of a relation under this disk's element width."""
        if len(relation) == 0:
            return 0
        return len(relation) * relation.arity * ((self.element_bits + 7) // 8)

    # -- reading ---------------------------------------------------------------

    def read(
        self,
        name: str,
        selection: Optional[tuple[ColumnRef, str, int]] = None,
    ) -> tuple[Relation, float]:
        """Stream a base relation off the disk; returns (relation, seconds).

        The read time covers the *full* stored relation (every tuple
        passes under the head).  With logic-per-track, ``selection`` —
        a ``(column, op, value)`` predicate — filters tuples on the
        fly; without it, requesting a selection here is an error (route
        it to the CPU instead).
        """
        try:
            relation = self._catalog[name]
        except KeyError:
            raise PlanError(
                f"no base relation named {name!r}; have {self.names()}"
            ) from None
        metrics.inc("machine.disk.reads")
        seconds = self.model.read_seconds(self.relation_bytes(relation))
        if selection is None:
            return relation, seconds
        if not self.logic_per_track:
            raise PlanError(
                "selection during read requires a logic-per-track disk "
                "(§9, ref [8]); this disk has none"
            )
        column, op, value = selection
        compare = COMPARISON_OPS.get(op)
        if compare is None:
            raise PlanError(f"unknown comparison operator {op!r}")
        position = relation.schema.resolve(column)
        filtered = Relation(
            relation.schema,
            (row for row in relation.tuples if compare(row[position], value)),
        )
        return filtered, seconds

    def __repr__(self) -> str:
        track = "logic-per-track, " if self.logic_per_track else ""
        return f"MachineDisk({track}{len(self._catalog)} relations)"
