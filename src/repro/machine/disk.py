"""Mass storage for the integrated system (Fig 9-1, §9).

Base relations live on a moving-head disk (the §8 model: whole-cylinder
reads at rotation rate).  "Disks with 'logic-per-track' capabilities
[8] can of course be incorporated into the system, so that some simple
queries never have to be processed outside the disks" — with
``logic_per_track=True``, a selection predicate is applied *during* the
read at no extra cost and only matching tuples leave the disk.

A :class:`~repro.store.RelationStore` may be attached to back the disk
with real out-of-core storage: store-resident relations are read chunk
by chunk, and a selection prunes chunks through the store's grid index
before any byte moves — the read is billed only for the surviving
chunks' tuples under this disk's timing model.  A store-backed
selection behaves like logic-per-track (the predicate rides the read)
regardless of the ``logic_per_track`` flag, because the store applies
it while scanning anyway.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import PlanError
from repro.obs import metrics
from repro.perf.disk import DiskModel, PAPER_DISK
from repro.relational.algebra import COMPARISON_OPS
from repro.relational.relation import Relation
from repro.relational.schema import ColumnRef, Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.store import RelationStore, StoredRelation

__all__ = ["MachineDisk"]


class MachineDisk:
    """A disk holding the machine's base relations."""

    def __init__(
        self,
        model: DiskModel = PAPER_DISK,
        logic_per_track: bool = False,
        element_bits: int = 32,
    ) -> None:
        self.model = model
        self.logic_per_track = logic_per_track
        self.element_bits = element_bits
        self._catalog: dict[str, Relation] = {}
        self._store: Optional["RelationStore"] = None

    # -- catalog --------------------------------------------------------------

    def store(self, name: str, relation: Relation) -> None:
        """Write (or overwrite) a base relation (in-memory population)."""
        if not name:
            raise PlanError("a stored relation requires a name")
        self._catalog[name] = relation

    def attach_store(self, store: "RelationStore") -> None:
        """Back this disk with a persistent columnar relation store.

        Store-resident relations become queryable by name; an in-memory
        :meth:`store` under the same name shadows the persistent copy.
        """
        self._store = store

    @property
    def backing_store(self) -> Optional["RelationStore"]:
        """The attached :class:`~repro.store.RelationStore`, if any."""
        return self._store

    def names(self) -> list[str]:
        """Names of stored relations (in-memory and store-backed)."""
        known = set(self._catalog)
        if self._store is not None:
            known.update(self._store.names())
        return sorted(known)

    def holds(self, name: str) -> bool:
        """Whether a base relation exists."""
        return name in self._catalog or (
            self._store is not None and self._store.holds(name)
        )

    def store_backed(self, name: str) -> bool:
        """Whether reads of ``name`` stream from the persistent store."""
        return (
            name not in self._catalog
            and self._store is not None
            and self._store.holds(name)
        )

    def stored_handle(self, name: str) -> "StoredRelation":
        """The store's read handle for a store-backed relation."""
        if not self.store_backed(name):
            raise PlanError(
                f"relation {name!r} is not store-backed on this disk"
            )
        return self._store.open(name)

    def profile(self, name: str) -> tuple[int, int, Schema]:
        """(cardinality, arity, schema) without materialising tuples.

        The physical planner and the catalog fingerprint size base
        relations through this, so a million-tuple store-backed
        relation never has to be decoded just to be *costed*.
        """
        if name in self._catalog:
            relation = self._catalog[name]
            return len(relation), relation.arity, relation.schema
        if self.store_backed(name):
            handle = self._store.open(name)
            return handle.rows, handle.arity, handle.schema
        raise PlanError(
            f"no base relation named {name!r}; have {self.names()}"
        )

    def relation(self, name: str) -> Relation:
        """The stored relation itself, without modelling a timed read.

        The physical planner uses this to learn exact base sizes and
        schemas while costing a plan; :meth:`read` remains the only way
        data *moves* off the disk.  For store-backed relations this
        materialises every chunk — prefer :meth:`profile` for sizing.
        """
        try:
            return self._catalog[name]
        except KeyError:
            if self.store_backed(name):
                return self._store.open(name).read().relation
            raise PlanError(
                f"no base relation named {name!r}; have {self.names()}"
            ) from None

    def relation_bytes(self, relation: Relation) -> int:
        """On-disk size of a relation under this disk's element width."""
        if len(relation) == 0:
            return 0
        return len(relation) * relation.arity * ((self.element_bits + 7) // 8)

    def _tuple_bytes(self, rows: int, arity: int) -> int:
        return rows * arity * ((self.element_bits + 7) // 8)

    def store_fingerprint(self) -> tuple:
        """(name, manifest digest) pairs of the attached store.

        Folded into :meth:`Catalog.content_fingerprint`: rewriting a
        stored relation changes its manifest digest, so plans compiled
        against the old chunking/index/data stop matching the cache.
        """
        if self._store is None:
            return ()
        return self._store.fingerprint()

    # -- reading ---------------------------------------------------------------

    def read(
        self,
        name: str,
        selection: Optional[tuple[ColumnRef, str, int]] = None,
    ) -> tuple[Relation, float]:
        """Stream a base relation off the disk; returns (relation, seconds).

        The read time covers the *full* stored relation (every tuple
        passes under the head) — unless the relation is store-backed,
        in which case a selection prunes chunks via the grid index and
        only the surviving chunks' tuples are billed.  With
        logic-per-track, ``selection`` — a ``(column, op, value)``
        predicate — filters tuples on the fly; without either, a
        selection here is an error (route it to the CPU instead).
        """
        if self.store_backed(name):
            scan = self._store.open(name).read(selection)
            metrics.inc("machine.disk.reads")
            seconds = self.model.read_seconds(
                self._tuple_bytes(scan.rows_scanned, scan.relation.arity)
            )
            return scan.relation, seconds
        try:
            relation = self._catalog[name]
        except KeyError:
            raise PlanError(
                f"no base relation named {name!r}; have {self.names()}"
            ) from None
        metrics.inc("machine.disk.reads")
        seconds = self.model.read_seconds(self.relation_bytes(relation))
        if selection is None:
            return relation, seconds
        if not self.logic_per_track:
            raise PlanError(
                "selection during read requires a logic-per-track disk "
                "(§9, ref [8]) or a store-backed relation; this disk has "
                "neither"
            )
        column, op, value = selection
        compare = COMPARISON_OPS.get(op)
        if compare is None:
            raise PlanError(f"unknown comparison operator {op!r}")
        position = relation.schema.resolve(column)
        filtered = Relation(
            relation.schema,
            (row for row in relation.tuples if compare(row[position], value)),
        )
        return filtered, seconds

    def __repr__(self) -> str:
        track = "logic-per-track, " if self.logic_per_track else ""
        backed = (
            f" + store({len(self._store.names())})"
            if self._store is not None else ""
        )
        return f"MachineDisk({track}{len(self._catalog)} relations{backed})"
