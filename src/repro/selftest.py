"""Self-verification sweep: every array against the reference algebra.

``python -m repro selftest`` (or :func:`run_selftest`) runs each
systolic operator — both geometry variants where they exist, with
ghost-tag schedule verification on — over seeded random workloads and
checks every answer against the software oracle.  This is the 30-second
"is this installation computing what the paper says" check a downstream
user runs before trusting the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.arrays import (
    systolic_difference,
    systolic_divide,
    systolic_dynamic_theta_join,
    systolic_intersection,
    systolic_join,
    systolic_projection,
    systolic_remove_duplicates,
    systolic_theta_join,
    systolic_union,
)
from repro.arrays.hexagonal import hex_compare_all_pairs
from repro.arrays import compare_all_pairs
from repro.patterns import match_pattern
from repro.relational import algebra
from repro.workloads import (
    division_workload,
    join_pair,
    overlapping_pair,
    relation_with_duplicates,
)

__all__ = ["CheckResult", "SelfTestReport", "run_selftest"]


@dataclass
class CheckResult:
    """One operator check: name, verdict, and a short detail line."""

    name: str
    passed: bool
    detail: str


@dataclass
class SelfTestReport:
    """All checks from one sweep."""

    checks: list[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True iff every check passed."""
        return all(check.passed for check in self.checks)

    def summary(self) -> str:
        """Human-readable scoreboard."""
        lines = []
        for check in self.checks:
            mark = "ok " if check.passed else "FAIL"
            lines.append(f"  [{mark}] {check.name:<28} {check.detail}")
        verdict = "ALL CHECKS PASSED" if self.passed else "CHECKS FAILED"
        lines.append(f"{verdict} ({len(self.checks)} checks)")
        return "\n".join(lines)


def _check(
    report: SelfTestReport, name: str, thunk: Callable[[], str]
) -> None:
    try:
        detail = thunk()
        report.checks.append(CheckResult(name, True, detail))
    except Exception as exc:  # noqa: BLE001 — a self-test reports, not raises
        report.checks.append(CheckResult(name, False, f"{type(exc).__name__}: {exc}"))


def run_selftest(
    seed: int = 0, size: int = 8, backend=None
) -> SelfTestReport:
    """Run the sweep; deterministic per (seed, size).

    ``backend`` selects the array execution backend for every systolic
    operator (``"pulse"`` default, or ``"lattice"``).
    """
    report = SelfTestReport()
    a, b = overlapping_pair(size, size, size // 2, arity=3, seed=seed)
    multi = relation_with_duplicates(size, 2.0, arity=2, seed=seed + 1)
    ja, jb = join_pair(size, size - 1, size // 2, seed=seed + 2)
    da, db, quotient_size = division_workload(size // 2, 3, size // 4,
                                              seed=seed + 3)

    def agree(result, oracle, extra: str = "") -> str:
        if result != oracle:
            raise AssertionError(
                f"array produced {len(result)} tuples, oracle {len(oracle)}"
            )
        return f"{len(result)} tuples{extra}"

    for variant in ("counter", "fixed"):
        _check(report, f"intersection [{variant}]", lambda v=variant: agree(
            systolic_intersection(
                a, b, variant=v, tagged=True, backend=backend
            ).relation,
            algebra.intersection(a, b),
        ))
        _check(report, f"difference [{variant}]", lambda v=variant: agree(
            systolic_difference(
                a, b, variant=v, tagged=True, backend=backend
            ).relation,
            algebra.difference(a, b),
        ))
        _check(report, f"remove-duplicates [{variant}]", lambda v=variant: agree(
            systolic_remove_duplicates(
                multi, variant=v, tagged=True, backend=backend
            ).relation,
            algebra.remove_duplicates(multi),
        ))
    _check(report, "union", lambda: agree(
        systolic_union(a, b, tagged=True, backend=backend).relation,
        algebra.union(a, b),
    ))
    _check(report, "projection", lambda: agree(
        systolic_projection(
            a, ["c0", "c1"], tagged=True, backend=backend
        ).relation,
        algebra.project(a, ["c0", "c1"]),
    ))
    _check(report, "equi-join", lambda: agree(
        systolic_join(
            ja, jb, [("key", "key")], tagged=True, backend=backend
        ).relation,
        algebra.join(ja, jb, [("key", "key")]),
    ))
    _check(report, "theta-join (preloaded <)", lambda: agree(
        systolic_theta_join(
            ja, jb, [("key", "key")], ["<"], tagged=True, backend=backend
        ).relation,
        algebra.theta_join(ja, jb, [("key", "key")], ["<"]),
    ))
    _check(report, "theta-join (streamed ops)", lambda: agree(
        systolic_dynamic_theta_join(
            ja, jb, [("key", "key")], ["<="], tagged=True, backend=backend
        ).relation,
        algebra.theta_join(ja, jb, [("key", "key")], ["<="]),
    ))
    _check(report, "division", lambda: agree(
        systolic_divide(da, db, tagged=True, backend=backend).relation,
        algebra.divide(da, db),
        extra=f" (expected quotient {quotient_size})",
    ))
    _check(report, "hexagonal comparison", lambda: agree_matrix(
        hex_compare_all_pairs(a.tuples, b.tuples, backend=backend).t_matrix,
        compare_all_pairs(a.tuples, b.tuples, backend=backend).t_matrix,
    ))
    _check(report, "pattern-match chip", _pattern_check)
    return report


def agree_matrix(got, want) -> str:
    """Compare two T matrices; detail line reports the TRUE count."""
    if got != want:
        raise AssertionError("hexagonal and orthogonal T matrices differ")
    return f"{sum(map(sum, got))} TRUE entries"


def _pattern_check() -> str:
    text = "reproducibility is systolic"
    matches = match_pattern(text, "s?st").matches
    expected = [
        i for i in range(len(text) - 3)
        if text[i] == "s" and text[i + 2 : i + 4] == "st"
    ]
    if matches != expected:
        raise AssertionError(f"{matches} != {expected}")
    return f"{len(matches)} matches"
