"""Recovery primitives: bounded retries, cancellation, deadlines.

The machine and shard executors recover from injected (or real)
transient faults by retrying the same planned dispatch with **bounded
exponential backoff** — the retried attempt runs the identical pure
computation on the identical device, which is why a recovered run stays
bit-identical to a fault-free one.  The primitives here keep that loop
honest:

* :class:`RetryPolicy` — attempt budget and backoff curve, with
  *deterministic* jitter (a seeded hash of the retry site, not a shared
  RNG) so two runs of the same plan back off identically;
* :class:`CancelToken` — a cooperative stop flag checked at dispatch
  boundaries and inside backoff/slowness sleeps, so a deadline can
  cancel a hung query promptly;
* :func:`retry_call` — the one retry loop everyone shares, charging
  each retry to the :class:`~repro.faults.plan.FaultPlan` ledger and
  the ``faults.retries`` / ``faults.backoff_seconds`` metrics;
* :func:`run_with_deadline` — run a callable on a worker thread and
  cancel it (``faults.deadline_cancels``, :class:`DeadlineError`) when
  the budget lapses.

Backoff sleeps are *host* time and deliberately tiny (milliseconds by
default): they shape contention, not simulated timelines, which are
replayed from the plan and never see them.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

from repro.errors import DeadlineError, FaultError
from repro.obs import metrics

__all__ = [
    "CancelToken",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "retry_call",
    "run_with_deadline",
]

#: Sleeps are sliced into pieces this long so a cancel lands mid-sleep.
_SLEEP_SLICE = 0.01


class CancelToken:
    """A cooperative cancellation flag shared across one query's threads.

    The deadline enforcer sets it; the execution layers poll it at
    dispatch boundaries (:meth:`check`) and slice every injected or
    backoff sleep through :meth:`sleep` so cancellation lands within
    ~10 ms even inside a deliberately slowed query.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason = ""

    def cancel(self, reason: str = "cancelled") -> None:
        self.reason = reason
        self._event.set()

    def cancelled(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        """Raise :class:`DeadlineError` if the token has been cancelled."""
        if self._event.is_set():
            raise DeadlineError(self.reason or "query cancelled")

    def sleep(self, seconds: float) -> None:
        """Sleep, but wake (and raise) the moment the token cancels."""
        deadline = time.monotonic() + seconds
        while True:
            self.check()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            self._event.wait(min(remaining, _SLEEP_SLICE))


def cancellable_sleep(
    seconds: float, cancel: Optional[CancelToken]
) -> None:
    """Sleep through the token when there is one, plainly otherwise."""
    if seconds <= 0:
        return
    if cancel is not None:
        cancel.sleep(seconds)
    else:
        time.sleep(seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``attempts`` counts *total* tries (so ``attempts=4`` means one try
    plus up to three retries).  The delay before retry *k* is
    ``base * multiplier**(k-1)`` capped at ``cap``, scaled into
    ``[1 - jitter, 1]`` by a hash of ``(seed, site, k)`` — jittered so
    concurrent retries of different sites de-synchronize, deterministic
    so the same run always backs off the same way.
    """

    attempts: int = 4
    base_seconds: float = 0.001
    cap_seconds: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def delay(self, retry: int, site: str = "") -> float:
        """Seconds to wait before retry number ``retry`` (1-based)."""
        raw = self.base_seconds * (self.multiplier ** (retry - 1))
        raw = min(raw, self.cap_seconds)
        if self.jitter <= 0:
            return raw
        text = f"{self.seed}|{site}|{retry}"
        digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
        unit = int.from_bytes(digest, "big") / float(1 << 64)
        return raw * (1.0 - self.jitter * unit)


DEFAULT_RETRY_POLICY = RetryPolicy()


def retry_call(
    fn: Callable[[], object],
    *,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    site: str = "",
    plan=None,
    cancel: Optional[CancelToken] = None,
    retryable: Tuple[Type[BaseException], ...] = (FaultError,),
):
    """Call ``fn`` with the policy's retry budget.

    Each retry is charged to the fault plan's ledger (when one is
    given) and to ``faults.retries``; each backoff sleep to
    ``faults.backoff_seconds``.  The last failure re-raises unchanged
    when the budget exhausts, so the caller can tell *which* fault
    survived recovery (and e.g. quarantine the device it names).
    """
    last: Optional[BaseException] = None
    for attempt in range(1, policy.attempts + 1):
        if cancel is not None:
            cancel.check()
        try:
            return fn()
        except retryable as exc:
            last = exc
            if attempt == policy.attempts:
                raise
            if plan is not None:
                plan.note_retry()
            else:
                metrics.inc("faults.retries")
            delay = policy.delay(attempt, site)
            metrics.observe("faults.backoff_seconds", delay)
            cancellable_sleep(delay, cancel)
    raise last if last is not None else FaultError(  # pragma: no cover
        f"retry budget of {policy.attempts} was zero for {site!r}"
    )


def run_with_deadline(
    fn: Callable[[], object],
    seconds: Optional[float],
    cancel: Optional[CancelToken] = None,
    label: str = "query",
):
    """Run ``fn``, cancelling it if it outlives ``seconds``.

    ``fn`` runs on a daemon worker thread; if it does not finish within
    the budget the token is cancelled (so cooperative checkpoints stop
    the work promptly) and :class:`DeadlineError` is raised to the
    caller — who frees the pool slot immediately rather than waiting on
    the hung worker.  ``seconds=None`` calls ``fn`` inline: the default
    path is untouched by deadline machinery.
    """
    if seconds is None:
        return fn()
    token = cancel if cancel is not None else CancelToken()
    box: dict[str, object] = {}
    done = threading.Event()

    def worker() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            box["error"] = exc
        finally:
            done.set()

    thread = threading.Thread(
        target=worker, name=f"repro-deadline-{label}", daemon=True
    )
    thread.start()
    if not done.wait(seconds):
        token.cancel(
            f"{label} exceeded its deadline of {seconds:g}s and was "
            f"cancelled"
        )
        metrics.inc("faults.deadline_cancels")
        raise DeadlineError(token.reason)
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    return box["value"]
