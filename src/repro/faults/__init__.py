"""Deterministic fault injection and the recovery layer it exercises.

A machine assembled from thousands of identical VLSI cells (§3–§7)
fails in identical, enumerable ways: a defective cell in one §8 block,
a dead array, a dropped interconnect message, a bad disk track.  This
package makes those failures *injectable* — seeded, site-keyed, and
deterministic under any host-thread interleaving — and provides the
retry/cancel/deadline primitives the machine, shard, and serving
layers use to recover from them.

The contract (tested by the differential suite and
``tools/chaos_smoke.py``): a run that recovers from injected transient
faults is **bit-identical** — results, timeline, span structure — to
the fault-free run, with every injection and retry counted in the
``faults.*`` metrics.  See ``docs/ROBUSTNESS.md``.
"""

from repro.faults.plan import FaultPlan, FaultRule, parse_faults
from repro.faults.recovery import (
    DEFAULT_RETRY_POLICY,
    CancelToken,
    RetryPolicy,
    retry_call,
    run_with_deadline,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "parse_faults",
    "CancelToken",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "retry_call",
    "run_with_deadline",
]
