"""Seeded, deterministic fault-injection plans.

The paper's machine is assembled from many identical VLSI cells, arrays,
and (in the sharded reading) whole machines — a world where a defective
cell, a dead device, or a dropped message is the *expected* failure
mode, and §8's block decomposition is the natural unit of re-execution.
A :class:`FaultPlan` describes which of those failures happen, where,
and how often, in a way that is **deterministic by construction**:

* every injection site is a stable key — ``(scope, kind, target,
  op key)`` — independent of thread timing;
* each site keeps its own attempt counter, so "fail the first two
  attempts" means the first two attempts *of that site*, whichever
  host thread makes them;
* probabilistic rules hash ``(seed, site, attempt)`` instead of drawing
  from a sequential RNG, so a parallel run injects exactly the faults a
  serial run does.

That determinism is what lets the differential tests demand the
recovered run be **bit-identical** — results, timeline, span structure
— to the fault-free run (docs/ROBUSTNESS.md).

Fault spec grammar (the CLI's ``--faults`` argument)::

    SPEC  := RULE[,RULE...]
    RULE  := device:NAME[:N|:pP|:kill]   fail executes on device NAME
           | block:NAME:B[:N]            cell fault in §8 block B of NAME
           | shard:I[:N]                 crash shard I's stage runs
           | exchange:NAME[:N]           drop interconnect exchanges
                                         (NAME '*' matches every step)
           | disk:NAME[:N]               fail reads of base relation NAME
                                         (NAME '*' matches every read)
           | slow:NAME:SECONDS           inject host slowness per execute

``N`` (default 1) bounds the failures per site — the fault is
*transient* and heals, so bounded retries recover.  ``kill`` makes a
device fault *permanent*: its retry budget exhausts, it is quarantined,
and the pool replans the query onto the surviving roster.  ``pP`` (e.g.
``p0.5``) makes each attempt fail with probability ``P``, decided by
the seeded hash.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    ConfigError,
    DeviceFaultError,
    DiskFaultError,
    ExchangeFaultError,
    ShardFaultError,
)
from repro.obs import metrics

__all__ = ["FaultRule", "FaultPlan", "parse_faults"]

#: Failures-per-site used by ``kill`` rules: effectively unbounded, so
#: the site's retry budget always exhausts and the device quarantines.
ALWAYS = 1 << 30

_KINDS = ("device", "block", "shard", "exchange", "disk", "slow")


@dataclass(frozen=True)
class FaultRule:
    """One clause of a fault spec.

    ``count`` bounds how many attempts fail per site; ``probability``
    (exclusive with a finite count) makes each attempt fail by seeded
    coin flip; ``block`` restricts a device rule to ops whose §8
    decomposition covers that block index; ``seconds`` is the injected
    slowness of a ``slow`` rule.
    """

    kind: str
    target: str
    count: int = 1
    probability: Optional[float] = None
    block: Optional[int] = None
    seconds: float = 0.0

    def describe(self) -> str:
        if self.kind == "slow":
            return f"slow:{self.target}:{self.seconds:g}"
        suffix = ""
        if self.probability is not None:
            suffix = f":p{self.probability:g}"
        elif self.count >= ALWAYS:
            suffix = ":kill"
        elif self.count != 1:
            suffix = f":{self.count}"
        block = f":{self.block}" if self.block is not None else ""
        return f"{self.kind}:{self.target}{block}{suffix}"


def _parse_rule(text: str) -> FaultRule:
    parts = text.strip().split(":")
    if len(parts) < 2 or not parts[0] or not parts[1]:
        raise ConfigError(
            f"fault rule {text!r} is not KIND:TARGET[...]; kinds are "
            f"{', '.join(_KINDS)}"
        )
    kind, target = parts[0].lower(), parts[1]
    if kind not in _KINDS:
        raise ConfigError(
            f"unknown fault kind {kind!r} in {text!r}; kinds are "
            f"{', '.join(_KINDS)}"
        )
    if kind == "slow":
        if len(parts) != 3:
            raise ConfigError(f"slow rule {text!r} needs slow:DEVICE:SECONDS")
        try:
            seconds = float(parts[2])
        except ValueError:
            raise ConfigError(
                f"slow rule {text!r}: {parts[2]!r} is not a number"
            ) from None
        if seconds < 0:
            raise ConfigError(f"slow rule {text!r}: seconds must be >= 0")
        return FaultRule(kind=kind, target=target, seconds=seconds)
    block: Optional[int] = None
    rest = parts[2:]
    if kind == "block":
        if not rest:
            raise ConfigError(
                f"block rule {text!r} needs block:DEVICE:INDEX[:N]"
            )
        try:
            block = int(rest[0])
        except ValueError:
            raise ConfigError(
                f"block rule {text!r}: {rest[0]!r} is not a block index"
            ) from None
        if block < 0:
            raise ConfigError(f"block rule {text!r}: index must be >= 0")
        rest = rest[1:]
    count, probability = 1, None
    if rest:
        if len(rest) > 1:
            raise ConfigError(f"fault rule {text!r} has too many fields")
        spec = rest[0].lower()
        if spec == "kill":
            if kind not in ("device", "block"):
                raise ConfigError(
                    f"fault rule {text!r}: only device faults can be "
                    f"permanent (kill)"
                )
            count = ALWAYS
        elif spec.startswith("p"):
            try:
                probability = float(spec[1:])
            except ValueError:
                raise ConfigError(
                    f"fault rule {text!r}: {spec!r} is not pPROBABILITY"
                ) from None
            if not 0.0 <= probability <= 1.0:
                raise ConfigError(
                    f"fault rule {text!r}: probability must be in [0, 1]"
                )
        else:
            try:
                count = int(spec)
            except ValueError:
                raise ConfigError(
                    f"fault rule {text!r}: {spec!r} is neither a count, "
                    f"pPROBABILITY, nor 'kill'"
                ) from None
            if count < 0:
                raise ConfigError(f"fault rule {text!r}: count must be >= 0")
    return FaultRule(
        kind=kind, target=target, count=count, probability=probability,
        block=block,
    )


def parse_faults(spec: str, seed: int = 0) -> "FaultPlan":
    """Parse a ``--faults`` spec string into a :class:`FaultPlan`."""
    rules = [
        _parse_rule(clause)
        for clause in spec.split(",") if clause.strip()
    ]
    if not rules:
        raise ConfigError(f"fault spec {spec!r} contains no rules")
    return FaultPlan(rules, seed=seed)


class FaultPlan:
    """A deterministic schedule of injected failures, plus their ledger.

    One plan is shared by every layer of one run (machine executor,
    shard executor, serving pool).  All mutable state — per-site attempt
    counters, the quarantine set, the injection ledger — sits behind
    one lock, and every decision is a pure function of ``(seed, site,
    attempt number)``, so concurrent execution cannot reorder faults.
    """

    def __init__(self, rules: list[FaultRule], seed: int = 0) -> None:
        self.rules = list(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._attempts: dict[tuple, int] = {}
        self._injected: dict[str, int] = {}
        self._retries = 0
        self._quarantined: set[str] = set()

    # -- the deterministic coin -------------------------------------------

    def _chance(self, site: tuple, attempt: int) -> float:
        """A uniform [0, 1) value pinned to (seed, site, attempt)."""
        text = f"{self.seed}|{'|'.join(map(str, site))}|{attempt}"
        digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big") / float(1 << 64)

    def _fires(self, rule: FaultRule, site: tuple) -> bool:
        """Whether ``rule`` fails this site's next attempt (and count it)."""
        with self._lock:
            attempt = self._attempts.get(site, 0) + 1
            self._attempts[site] = attempt
            if rule.probability is not None:
                fired = self._chance(site, attempt) < rule.probability
            else:
                fired = attempt <= rule.count
            if fired:
                self._injected[rule.kind] = (
                    self._injected.get(rule.kind, 0) + 1
                )
        if fired:
            metrics.inc("faults.injected")
        return fired

    def _rule_for(
        self, kind: str, target: str, blocks: Optional[int] = None
    ) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.kind != kind:
                continue
            if rule.target not in (target, "*"):
                continue
            if rule.block is not None and (
                blocks is None or rule.block >= blocks
            ):
                # A cell fault in block B only manifests when the op's
                # §8 decomposition actually runs block B.
                continue
            return rule
        return None

    # -- injection sites ----------------------------------------------------

    def device_fault(
        self,
        device: str,
        op_key: str,
        scope: str = "",
        blocks: Optional[int] = None,
    ) -> Optional[DeviceFaultError]:
        """The fault (if any) injected into this execute attempt.

        Checked by the executor *before* dispatching an op to a device,
        so a failed attempt leaves no trace in the span tree — which is
        what keeps recovered runs' traces bit-identical to fault-free
        runs.  Returns the error instead of raising so the caller owns
        the retry bookkeeping.
        """
        fault = None
        rule = self._rule_for("device", device)
        if rule is not None and self._fires(
            rule, ("device", scope, device, op_key)
        ):
            fault = DeviceFaultError(
                f"injected fault on device {device!r} executing {op_key}"
                f"{f' (scope {scope})' if scope else ''}",
                device=device,
            )
        if fault is None:
            rule = self._rule_for("block", device, blocks=blocks)
            if rule is not None and self._fires(
                rule, ("block", scope, device, rule.block, op_key)
            ):
                fault = DeviceFaultError(
                    f"injected cell fault in block {rule.block} of device "
                    f"{device!r} executing {op_key}",
                    device=device,
                )
        return fault

    def disk_fault(
        self, name: str, scope: str = ""
    ) -> Optional[DiskFaultError]:
        """The injected read error (if any) for base relation ``name``."""
        rule = self._rule_for("disk", name)
        if rule is not None and self._fires(rule, ("disk", scope, name)):
            return DiskFaultError(
                f"injected read error on base relation {name!r}"
            )
        return None

    def shard_fault(
        self, shard: int, stage_key: str
    ) -> Optional[ShardFaultError]:
        """The injected crash (if any) of one shard's stage run."""
        rule = self._rule_for("shard", str(shard))
        if rule is not None and self._fires(
            rule, ("shard", shard, stage_key)
        ):
            return ShardFaultError(
                f"injected crash of shard {shard} running {stage_key}"
            )
        return None

    def exchange_fault(self, name: str) -> Optional[ExchangeFaultError]:
        """The injected drop (if any) of one interconnect exchange."""
        rule = self._rule_for("exchange", name)
        if rule is not None and self._fires(rule, ("exchange", name)):
            return ExchangeFaultError(
                f"injected drop of interconnect exchange {name!r}"
            )
        return None

    def slowness(self, device: str) -> float:
        """Injected host seconds of slowness for one execute on ``device``.

        Unlike failures, slowness is unconditional (every execute on the
        named device) — it exists to make deadlines testable.
        """
        rule = self._rule_for("slow", device)
        return rule.seconds if rule is not None else 0.0

    # -- quarantine ---------------------------------------------------------

    def quarantine(self, device: str) -> bool:
        """Mark a device dead; True if it was newly quarantined."""
        with self._lock:
            if device in self._quarantined:
                return False
            self._quarantined.add(device)
        metrics.inc("faults.quarantines")
        return True

    def is_quarantined(self, device: str) -> bool:
        with self._lock:
            return device in self._quarantined

    def quarantined(self) -> list[str]:
        """The dead devices, sorted (stable for fingerprints and docs)."""
        with self._lock:
            return sorted(self._quarantined)

    # -- ledger -------------------------------------------------------------

    def note_retry(self) -> None:
        """Count one recovery retry (kept even when metrics are off)."""
        with self._lock:
            self._retries += 1
        metrics.inc("faults.retries")

    @property
    def injected(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    @property
    def retries(self) -> int:
        with self._lock:
            return self._retries

    def snapshot(self) -> dict:
        """The ledger: injections by kind, retries, quarantined devices."""
        with self._lock:
            return {
                "rules": [rule.describe() for rule in self.rules],
                "seed": self.seed,
                "injected": dict(sorted(self._injected.items())),
                "retries": self._retries,
                "quarantined": sorted(self._quarantined),
            }

    def summary(self) -> str:
        """One human line for CLI output and example scripts."""
        snap = self.snapshot()
        injected = sum(snap["injected"].values())
        parts = [f"{injected} injected", f"{snap['retries']} retries"]
        if snap["quarantined"]:
            parts.append(f"quarantined: {', '.join(snap['quarantined'])}")
        return "faults: " + ", ".join(parts)

    def __repr__(self) -> str:
        rules = ",".join(rule.describe() for rule in self.rules)
        return f"FaultPlan({rules!r}, seed={self.seed})"
