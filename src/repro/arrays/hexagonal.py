"""The hexagonally connected alternative (§2.1, ref [5]).

"We use predominantly orthogonally and linearly connected arrays ...
although hexagonally connected arrays as in [5] would work as well in
many instances."  [5] is Kung & Leiserson's systolic matrix-product
array: three data streams flowing through a hexagonal mesh along
directions summing to zero, every cell computing
``c ← c ⊕ (a ⊗ b)`` when a triple coincides.

The comparison matrix of §3.3 *is* a matrix product over the
``(AND, =)`` semiring: ``t_ij = AND_k (a_ik = b_jk)``.  This module
states the problem as a :class:`~repro.systolic.engine.plan.HexPlan`
and reads the product off the final-meeting cells; the mesh geometry,
:class:`Semiring` algebra, and :class:`HexCell` processor live in
:mod:`repro.systolic.engine.hexmesh`, shared by both engines.

As Kung–Leiserson note for the hex design, at most one third of the
cells fire on any pulse — measured against the orthogonal array in
``benchmarks/bench_hexagonal.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.arrays.base import ArrayRun, execute
from repro.errors import SimulationError
from repro.systolic.engine import HexPlan
from repro.systolic.engine.hexmesh import (
    BOOLEAN_SEMIRING,
    COMPARISON_SEMIRING,
    U_A,
    U_B,
    U_C,
    HexCell,
    Semiring,
    hex_tap_name,
    meeting_cell,
)
from repro.systolic.engine.hexmesh import a_start as _a_start
from repro.systolic.engine.hexmesh import b_start as _b_start
from repro.systolic.engine.hexmesh import c_start as _c_start
from repro.systolic.engine.hexmesh import meeting_cell as _meeting_cell

__all__ = [
    "Semiring",
    "COMPARISON_SEMIRING",
    "BOOLEAN_SEMIRING",
    "HexCell",
    "HexComparisonResult",
    "hex_matrix_product",
    "hex_compare_all_pairs",
]


@dataclass
class HexComparisonResult:
    """T matrix from the hexagonal array, plus operational detail."""

    t_matrix: list[list[Any]]
    run: ArrayRun
    #: peak number of cells firing on one pulse (≤ cells/3, per [5])
    peak_firing: int


def hex_matrix_product(
    a_rows: Sequence[Sequence[Any]],
    b_cols: Sequence[Sequence[Any]],
    semiring: Semiring,
    tagged: bool = True,
    backend=None,
) -> HexComparisonResult:
    """Compute ``C[i][j] = ⊕_k (A[i][k] ⊗ B[k][j])`` on the hex array.

    ``a_rows[i][k]`` and ``b_cols[j][k]`` index the operands (note B is
    given column-wise, matching tuple comparison where both operands
    are tuples).  Results are read off the cells of each ``c`` stream's
    final meeting; with the default pulse backend every cell, wire, and
    pulse is simulated.
    """
    plan = HexPlan(a_rows, b_cols, semiring, tagged=tagged)
    result = execute(plan, backend=backend)
    n_a, n_b, m = plan.n_a, plan.n_b, plan.inner

    matrix: list[list[Any]] = [[None] * n_b for _ in range(n_a)]
    for i in range(n_a):
        for j in range(n_b):
            pos = meeting_cell(i, j, m - 1)
            token = result.collector(hex_tap_name(pos)).at(i + j + m - 1)
            if token is None:
                raise SimulationError(
                    f"c[{i}][{j}] did not exit its final meeting cell on "
                    f"pulse {i + j + m - 1}"
                )
            if tagged and token.tag is not None and token.tag != ("c", i, j):
                raise SimulationError(
                    f"final-cell arrival for ({i}, {j}) carries tag "
                    f"{token.tag!r}"
                )
            matrix[i][j] = token.value
    return HexComparisonResult(
        t_matrix=matrix,
        run=ArrayRun(
            pulses=result.pulses, rows=0, cols=0, cells=result.cells,
            backend=result.engine,
        ),
        peak_firing=result.peak_firing or 0,
    )


def hex_compare_all_pairs(
    a_tuples: Sequence[Sequence[int]],
    b_tuples: Sequence[Sequence[int]],
    tagged: bool = True,
    backend=None,
) -> HexComparisonResult:
    """The §3.3 comparison matrix on the hexagonal array (§2.1, [5])."""
    return hex_matrix_product(
        a_tuples, b_tuples, COMPARISON_SEMIRING, tagged=tagged,
        backend=backend,
    )
