"""The remove-duplicates array of §5, and the operations built on it.

The hardware is the intersection array unchanged; only the input data
and initial-``t`` schedule differ: the multi-relation A is fed into
*both* sides of the array (A is union-compatible with itself), and the
initial ``t_ij`` is forced FALSE on the main diagonal and upper
triangle (``j ≥ i``), so the accumulated ``t_i = OR_{j<i} t_ij`` is
TRUE exactly when an *earlier* tuple equals ``a_i``.  Tuples with TRUE
``t_i`` are dropped — "the opposite of the intersection operation" (§5).

On top of remove-duplicates:

* **union** — ``A ∪ B = remove-duplicates(A + B)`` over the
  concatenation of two union-compatible relations;
* **projection** — drop columns while retrieving tuples (forming the
  multi-relation ``A_f``), then remove duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arrays.base import (
    ArrayRun,
    accumulator_bits,
    attach_accumulation_column,
    build_counter_stream_grid,
    build_fixed_relation_grid,
    execute,
)
from repro.arrays.schedule import CounterStreamSchedule, FixedRelationSchedule
from repro.errors import SimulationError
from repro.relational.algebra import project_multi
from repro.relational.relation import MultiRelation, Relation
from repro.relational.schema import ColumnRef
from repro.systolic.engine import GridPlan, t_init_strict_lower
from repro.systolic.metrics import ActivityMeter
from repro.systolic.trace import TraceRecorder
from repro.systolic.wiring import Network

__all__ = [
    "DedupResult",
    "build_remove_duplicates_array",
    "systolic_remove_duplicates",
    "systolic_union",
    "systolic_projection",
]


# §5's triangular mask, as the canonical callable whose whole-grid
# boolean mask the lattice engine applies in one broadcast.
_masked = t_init_strict_lower


@dataclass
class DedupResult:
    """Outcome of a remove-duplicates run."""

    relation: Relation
    #: drop_vector[i] is the accumulated t_i: TRUE means a_i was removed.
    drop_vector: list[bool]
    run: ArrayRun


def build_remove_duplicates_array(
    a: MultiRelation,
    variant: str = "counter",
    tagged: bool = False,
) -> tuple[Network, CounterStreamSchedule | FixedRelationSchedule, dict[str, tuple[int, int]]]:
    """Assemble the §5 array: A against itself with triangular masking."""
    if not a:
        raise SimulationError(
            "the remove-duplicates array needs a non-empty multi-relation"
        )

    if variant == "counter":
        schedule: CounterStreamSchedule | FixedRelationSchedule = (
            CounterStreamSchedule(n_a=len(a), n_b=len(a), arity=a.arity)
        )
        network, layout = build_counter_stream_grid(
            a.tuples, a.tuples, schedule, t_init=_masked, tagged=tagged,
            name="remove-duplicates-array",
        )
    elif variant == "fixed":
        schedule = FixedRelationSchedule(n_a=len(a), n_b=len(a), arity=a.arity)
        network, layout = build_fixed_relation_grid(
            a.tuples, a.tuples, schedule, t_init=_masked, tagged=tagged,
            name="remove-duplicates-array-fixed",
        )
    else:
        raise SimulationError(f"unknown variant {variant!r}; use 'counter' or 'fixed'")
    attach_accumulation_column(network, schedule, layout, tagged=tagged)
    return network, schedule, layout


def systolic_remove_duplicates(
    a: MultiRelation,
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> DedupResult:
    """Collapse a multi-relation to a relation on the §5 array."""
    if not a:
        return DedupResult(
            Relation(a.schema), [], ArrayRun(pulses=0, rows=0, cols=0, cells=0)
        )
    if variant == "counter":
        schedule: CounterStreamSchedule | FixedRelationSchedule = (
            CounterStreamSchedule(n_a=len(a), n_b=len(a), arity=a.arity)
        )
    elif variant == "fixed":
        schedule = FixedRelationSchedule(n_a=len(a), n_b=len(a), arity=a.arity)
    else:
        raise SimulationError(f"unknown variant {variant!r}; use 'counter' or 'fixed'")
    plan = GridPlan(
        a.tuples, a.tuples, schedule, t_init=_masked, accumulate=True,
        tagged=tagged,
        name="remove-duplicates-array" if variant == "counter"
        else "remove-duplicates-array-fixed",
    )
    result = execute(plan, backend=backend, meter=meter, trace=trace)
    drop = accumulator_bits(result, schedule, len(a), tagged)
    if drop is None:
        collector = result.collector("t_i")
        vector: list[Optional[bool]] = [None] * len(a)
        for pulse, token in collector:
            i = schedule.tuple_from_accumulator_exit(pulse)
            if vector[i] is not None:
                raise SimulationError(
                    f"tuple {i} exited the accumulator twice"
                )
            vector[i] = bool(token.value)
        missing = [i for i, value in enumerate(vector) if value is None]
        if missing:
            raise SimulationError(
                f"tuples {missing[:8]} never exited the accumulation array"
            )
        drop = [bool(v) for v in vector]
    kept = (row for row, dropped in zip(a.tuples, drop) if not dropped)
    run = ArrayRun(
        pulses=result.pulses, rows=schedule.rows, cols=schedule.arity + 1,
        cells=result.cells, meter=meter, trace=trace, backend=result.engine,
    )
    return DedupResult(Relation(a.schema, kept), drop, run)


def systolic_union(
    a: Relation,
    b: Relation,
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> DedupResult:
    """``A ∪ B`` = remove-duplicates over the concatenation A + B (§5)."""
    a.schema.require_union_compatible(b.schema)
    concatenation = a.to_multi().concat(b)
    return systolic_remove_duplicates(
        concatenation, variant=variant, tagged=tagged, meter=meter,
        trace=trace, backend=backend,
    )


def systolic_projection(
    a: Relation | MultiRelation,
    columns: Sequence[ColumnRef],
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> DedupResult:
    """Projection over ``columns`` (§5).

    The column drop happens "during the time when the original tuples
    are retrieved from storage" — i.e. before feeding — producing the
    multi-relation ``A_f``, which the array then deduplicates.
    """
    reduced = project_multi(a, columns)
    return systolic_remove_duplicates(
        reduced, variant=variant, tagged=tagged, meter=meter, trace=trace,
        backend=backend,
    )
