"""The intersection array of §4 (Fig 4-1) — and, inverted, difference.

Comparison array on the left, accumulation array on the right.  The
accumulators fold each row of ``T`` into ``t_i = OR_j t_ij`` (equation
4.1); a tuple ``a_i`` belongs to ``A ∩ B`` iff ``t_i`` is TRUE and to
``A − B`` iff ``t_i`` is FALSE (§4.3 — "alternatively, we could just
put an inverter on the output line of the accumulation array").

Both the counter-streaming design of the figures and the §8
fixed-relation variant are provided; they produce identical answers and
differ only in geometry, pulse counts, and utilization (experiment
E11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arrays.base import (
    ArrayRun,
    attach_accumulation_column,
    build_counter_stream_grid,
    build_fixed_relation_grid,
    run_array,
)
from repro.arrays.schedule import CounterStreamSchedule, FixedRelationSchedule
from repro.errors import SimulationError
from repro.relational.relation import Relation
from repro.systolic.metrics import ActivityMeter
from repro.systolic.trace import TraceRecorder
from repro.systolic.wiring import Network

__all__ = [
    "MembershipResult",
    "build_intersection_array",
    "systolic_membership_vector",
    "systolic_intersection",
    "systolic_difference",
    "systolic_semijoin",
    "systolic_antijoin",
]


@dataclass
class MembershipResult:
    """The accumulated vector ``t`` and the relation it selects."""

    relation: Relation
    t_vector: list[bool]
    run: ArrayRun


def build_intersection_array(
    a: Relation,
    b: Relation,
    variant: str = "counter",
    tagged: bool = False,
) -> tuple[Network, CounterStreamSchedule | FixedRelationSchedule, dict[str, tuple[int, int]]]:
    """Assemble Fig 4-1: comparison grid + accumulation column.

    ``variant`` selects ``"counter"`` (both relations moving, the
    figures' design) or ``"fixed"`` (B preloaded, §8).
    """
    a.schema.require_union_compatible(b.schema)
    if not a or not b:
        raise SimulationError(
            "the intersection array needs non-empty operands; empty cases "
            "short-circuit in systolic_intersection"
        )
    if variant == "counter":
        schedule: CounterStreamSchedule | FixedRelationSchedule = (
            CounterStreamSchedule(n_a=len(a), n_b=len(b), arity=a.arity)
        )
        network, layout = build_counter_stream_grid(
            a.tuples, b.tuples, schedule,
            t_init=lambda i, j: True, tagged=tagged,
            name="intersection-array",
        )
    elif variant == "fixed":
        schedule = FixedRelationSchedule(n_a=len(a), n_b=len(b), arity=a.arity)
        network, layout = build_fixed_relation_grid(
            a.tuples, b.tuples, schedule,
            t_init=lambda i, j: True, tagged=tagged,
            name="intersection-array-fixed",
        )
    else:
        raise SimulationError(f"unknown variant {variant!r}; use 'counter' or 'fixed'")
    attach_accumulation_column(network, schedule, layout, tagged=tagged)
    return network, schedule, layout


def systolic_membership_vector(
    a: Relation,
    b: Relation,
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
) -> tuple[list[bool], ArrayRun]:
    """Run the array and read off ``t_i = OR_j (a_i == b_j)`` for all i.

    The vector is decoded from bottom-of-column arrival pulses alone,
    exactly as hardware would.
    """
    network, schedule, _ = build_intersection_array(
        a, b, variant=variant, tagged=tagged
    )
    pulses = schedule.total_pulses
    simulator = run_array(network, pulses=pulses, meter=meter, trace=trace)
    collector = simulator.collector("t_i")

    t_vector: list[Optional[bool]] = [None] * len(a)
    for pulse, token in collector:
        i = schedule.tuple_from_accumulator_exit(pulse)
        if t_vector[i] is not None:
            raise SimulationError(f"tuple {i} exited the accumulator twice")
        if tagged and token.tag is not None and token.tag != ("acc", i):
            raise SimulationError(
                f"arrival decoded as tuple {i} but carries tag {token.tag!r}"
            )
        t_vector[i] = bool(token.value)
    missing = [i for i, value in enumerate(t_vector) if value is None]
    if missing:
        raise SimulationError(
            f"tuples {missing[:8]} never exited the accumulation array"
        )
    cells = schedule.rows * (schedule.arity + 1)  # + accumulation column
    run = ArrayRun(
        pulses=pulses, rows=schedule.rows, cols=schedule.arity + 1,
        cells=cells, meter=meter, trace=trace,
    )
    return [bool(v) for v in t_vector], run


def _empty_run() -> ArrayRun:
    return ArrayRun(pulses=0, rows=0, cols=0, cells=0)


def systolic_intersection(
    a: Relation,
    b: Relation,
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
) -> MembershipResult:
    """``A ∩ B`` on the intersection array (keep tuples with TRUE t_i)."""
    a.schema.require_union_compatible(b.schema)
    if not a or not b:
        return MembershipResult(Relation(a.schema), [], _empty_run())
    t_vector, run = systolic_membership_vector(
        a, b, variant=variant, tagged=tagged, meter=meter, trace=trace
    )
    members = (row for row, keep in zip(a.tuples, t_vector) if keep)
    return MembershipResult(Relation(a.schema, members), t_vector, run)


def systolic_difference(
    a: Relation,
    b: Relation,
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
) -> MembershipResult:
    """``A − B``: same array, keep tuples with FALSE t_i (§4.3)."""
    a.schema.require_union_compatible(b.schema)
    if not a:
        return MembershipResult(Relation(a.schema), [], _empty_run())
    if not b:
        return MembershipResult(
            Relation(a.schema, a.tuples), [False] * len(a), _empty_run()
        )
    t_vector, run = systolic_membership_vector(
        a, b, variant=variant, tagged=tagged, meter=meter, trace=trace
    )
    members = (row for row, member in zip(a.tuples, t_vector) if not member)
    return MembershipResult(Relation(a.schema, members), t_vector, run)


def _semijoin_membership(
    a: Relation,
    b: Relation,
    on,
    variant: str,
    tagged: bool,
    meter,
    trace,
) -> tuple[list[bool], ArrayRun]:
    """Membership bits of A's join-column tuples among B's (§4 hardware)."""
    from repro.arrays.base import (
        attach_accumulation_column,
        build_counter_stream_grid,
        build_fixed_relation_grid,
    )
    from repro.relational.algebra import equi_join_layout

    a_positions, b_positions, _, _ = equi_join_layout(a, b, on)
    a_keys = [tuple(row[p] for p in a_positions) for row in a.tuples]
    b_keys = [tuple(row[p] for p in b_positions) for row in b.tuples]
    if variant == "counter":
        schedule: CounterStreamSchedule | FixedRelationSchedule = (
            CounterStreamSchedule(len(a_keys), len(b_keys), len(on))
        )
        network, _ = build_counter_stream_grid(
            a_keys, b_keys, schedule, t_init=lambda i, j: True,
            tagged=tagged, name="semijoin-array",
        )
    elif variant == "fixed":
        schedule = FixedRelationSchedule(len(a_keys), len(b_keys), len(on))
        network, _ = build_fixed_relation_grid(
            a_keys, b_keys, schedule, t_init=lambda i, j: True,
            tagged=tagged, name="semijoin-array-fixed",
        )
    else:
        raise SimulationError(
            f"unknown variant {variant!r}; use 'counter' or 'fixed'"
        )
    attach_accumulation_column(network, schedule, tagged=tagged)
    simulator = run_array(
        network, pulses=schedule.total_pulses, meter=meter, trace=trace
    )
    bits: list[Optional[bool]] = [None] * len(a_keys)
    for pulse, token in simulator.collector("t_i"):
        bits[schedule.tuple_from_accumulator_exit(pulse)] = bool(token.value)
    missing = [i for i, bit in enumerate(bits) if bit is None]
    if missing:
        raise SimulationError(
            f"tuples {missing[:8]} never exited the accumulation array"
        )
    run = ArrayRun(
        pulses=schedule.total_pulses, rows=schedule.rows,
        cols=schedule.arity + 1,
        cells=schedule.rows * (schedule.arity + 1), meter=meter, trace=trace,
    )
    return [bool(bit) for bit in bits], run


def systolic_semijoin(
    a: Relation,
    b: Relation,
    on,
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
) -> MembershipResult:
    """``A ⋉ B``: the §4 membership hardware fed with join columns only.

    Keeps the A tuples whose join-column combination matches some B
    tuple — the intersection array where "tuple" means "key".
    """
    from repro.relational.algebra import equi_join_layout

    equi_join_layout(a, b, on)  # validates columns and domains
    if not a or not b:
        return MembershipResult(Relation(a.schema), [], _empty_run())
    bits, run = _semijoin_membership(a, b, on, variant, tagged, meter, trace)
    members = (row for row, keep in zip(a.tuples, bits) if keep)
    return MembershipResult(Relation(a.schema, members), bits, run)


def systolic_antijoin(
    a: Relation,
    b: Relation,
    on,
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
) -> MembershipResult:
    """``A ▷ B``: the same bits, kept where FALSE (§4.3's inverter)."""
    from repro.relational.algebra import equi_join_layout

    equi_join_layout(a, b, on)
    if not a:
        return MembershipResult(Relation(a.schema), [], _empty_run())
    if not b:
        return MembershipResult(
            Relation(a.schema, a.tuples), [False] * len(a), _empty_run()
        )
    bits, run = _semijoin_membership(a, b, on, variant, tagged, meter, trace)
    members = (row for row, member in zip(a.tuples, bits) if not member)
    return MembershipResult(Relation(a.schema, members), bits, run)
