"""The intersection array of §4 (Fig 4-1) — and, inverted, difference.

Comparison array on the left, accumulation array on the right.  The
accumulators fold each row of ``T`` into ``t_i = OR_j t_ij`` (equation
4.1); a tuple ``a_i`` belongs to ``A ∩ B`` iff ``t_i`` is TRUE and to
``A − B`` iff ``t_i`` is FALSE (§4.3 — "alternatively, we could just
put an inverter on the output line of the accumulation array").

Both the counter-streaming design of the figures and the §8
fixed-relation variant are provided; they produce identical answers and
differ only in geometry, pulse counts, and utilization (experiment
E11).  ``backend=`` selects the execution engine — ``"pulse"`` for the
cycle-accurate simulator, ``"lattice"`` for the vectorized wavefront
engine (bit-identical results; see :mod:`repro.systolic.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arrays.base import (
    ArrayRun,
    accumulator_bits,
    attach_accumulation_column,
    build_counter_stream_grid,
    build_fixed_relation_grid,
    execute,
)
from repro.arrays.schedule import CounterStreamSchedule, FixedRelationSchedule
from repro.errors import SimulationError
from repro.relational.relation import Relation
from repro.systolic.engine import GridPlan, t_init_true
from repro.systolic.metrics import ActivityMeter
from repro.systolic.trace import TraceRecorder
from repro.systolic.wiring import Network

__all__ = [
    "MembershipResult",
    "build_intersection_array",
    "systolic_membership_vector",
    "systolic_intersection",
    "systolic_difference",
    "systolic_semijoin",
    "systolic_antijoin",
]


@dataclass
class MembershipResult:
    """The accumulated vector ``t`` and the relation it selects."""

    relation: Relation
    t_vector: list[bool]
    run: ArrayRun


def _membership_schedule(
    n_a: int, n_b: int, arity: int, variant: str
) -> CounterStreamSchedule | FixedRelationSchedule:
    if variant == "counter":
        return CounterStreamSchedule(n_a=n_a, n_b=n_b, arity=arity)
    if variant == "fixed":
        return FixedRelationSchedule(n_a=n_a, n_b=n_b, arity=arity)
    raise SimulationError(f"unknown variant {variant!r}; use 'counter' or 'fixed'")


def build_intersection_array(
    a: Relation,
    b: Relation,
    variant: str = "counter",
    tagged: bool = False,
) -> tuple[Network, CounterStreamSchedule | FixedRelationSchedule, dict[str, tuple[int, int]]]:
    """Assemble Fig 4-1: comparison grid + accumulation column.

    ``variant`` selects ``"counter"`` (both relations moving, the
    figures' design) or ``"fixed"`` (B preloaded, §8).
    """
    a.schema.require_union_compatible(b.schema)
    if not a or not b:
        raise SimulationError(
            "the intersection array needs non-empty operands; empty cases "
            "short-circuit in systolic_intersection"
        )
    schedule = _membership_schedule(len(a), len(b), a.arity, variant)
    if variant == "counter":
        network, layout = build_counter_stream_grid(
            a.tuples, b.tuples, schedule,
            t_init=t_init_true, tagged=tagged,
            name="intersection-array",
        )
    else:
        network, layout = build_fixed_relation_grid(
            a.tuples, b.tuples, schedule,
            t_init=t_init_true, tagged=tagged,
            name="intersection-array-fixed",
        )
    attach_accumulation_column(network, schedule, layout, tagged=tagged)
    return network, schedule, layout


def _run_membership(
    a_tuples,
    b_tuples,
    arity: int,
    variant: str,
    tagged: bool,
    meter: Optional[ActivityMeter],
    trace: Optional[TraceRecorder],
    backend,
    name: str,
) -> tuple[list[bool], ArrayRun]:
    """Plan, execute, and decode one Fig 4-1 membership run."""
    schedule = _membership_schedule(len(a_tuples), len(b_tuples), arity, variant)
    plan = GridPlan(
        a_tuples, b_tuples, schedule,
        t_init=t_init_true, accumulate=True, tagged=tagged, name=name,
    )
    result = execute(plan, backend=backend, meter=meter, trace=trace)
    bits = accumulator_bits(result, schedule, len(a_tuples), tagged)
    if bits is None:
        bits = _decode_accumulator_records(
            result.collector("t_i"), schedule, len(a_tuples), tagged
        )
    run = ArrayRun(
        pulses=result.pulses, rows=schedule.rows, cols=schedule.arity + 1,
        cells=result.cells, meter=meter, trace=trace, backend=result.engine,
    )
    return bits, run


def _decode_accumulator_records(
    collector, schedule, n: int, tagged: bool
) -> list[bool]:
    """Token-record decode of ``t_i`` (eager pulse-engine runs)."""
    t_vector: list[Optional[bool]] = [None] * n
    for pulse, token in collector:
        i = schedule.tuple_from_accumulator_exit(pulse)
        if t_vector[i] is not None:
            raise SimulationError(f"tuple {i} exited the accumulator twice")
        if tagged and token.tag is not None and token.tag != ("acc", i):
            raise SimulationError(
                f"arrival decoded as tuple {i} but carries tag {token.tag!r}"
            )
        t_vector[i] = bool(token.value)
    missing = [i for i, value in enumerate(t_vector) if value is None]
    if missing:
        raise SimulationError(
            f"tuples {missing[:8]} never exited the accumulation array"
        )
    return [bool(v) for v in t_vector]


def systolic_membership_vector(
    a: Relation,
    b: Relation,
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> tuple[list[bool], ArrayRun]:
    """Run the array and read off ``t_i = OR_j (a_i == b_j)`` for all i.

    The vector is decoded from bottom-of-column arrival pulses alone,
    exactly as hardware would.
    """
    a.schema.require_union_compatible(b.schema)
    if not a or not b:
        raise SimulationError(
            "the intersection array needs non-empty operands; empty cases "
            "short-circuit in systolic_intersection"
        )
    return _run_membership(
        a.tuples, b.tuples, a.arity, variant, tagged, meter, trace, backend,
        name="intersection-array" if variant == "counter"
        else "intersection-array-fixed",
    )


def _empty_run() -> ArrayRun:
    return ArrayRun(pulses=0, rows=0, cols=0, cells=0)


def systolic_intersection(
    a: Relation,
    b: Relation,
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> MembershipResult:
    """``A ∩ B`` on the intersection array (keep tuples with TRUE t_i)."""
    a.schema.require_union_compatible(b.schema)
    if not a or not b:
        return MembershipResult(Relation(a.schema), [], _empty_run())
    t_vector, run = systolic_membership_vector(
        a, b, variant=variant, tagged=tagged, meter=meter, trace=trace,
        backend=backend,
    )
    members = (row for row, keep in zip(a.tuples, t_vector) if keep)
    return MembershipResult(Relation(a.schema, members), t_vector, run)


def systolic_difference(
    a: Relation,
    b: Relation,
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> MembershipResult:
    """``A − B``: same array, keep tuples with FALSE t_i (§4.3)."""
    a.schema.require_union_compatible(b.schema)
    if not a:
        return MembershipResult(Relation(a.schema), [], _empty_run())
    if not b:
        return MembershipResult(
            Relation(a.schema, a.tuples), [False] * len(a), _empty_run()
        )
    t_vector, run = systolic_membership_vector(
        a, b, variant=variant, tagged=tagged, meter=meter, trace=trace,
        backend=backend,
    )
    members = (row for row, member in zip(a.tuples, t_vector) if not member)
    return MembershipResult(Relation(a.schema, members), t_vector, run)


def _semijoin_membership(
    a: Relation,
    b: Relation,
    on,
    variant: str,
    tagged: bool,
    meter,
    trace,
    backend,
) -> tuple[list[bool], ArrayRun]:
    """Membership bits of A's join-column tuples among B's (§4 hardware)."""
    from repro.relational.algebra import equi_join_layout

    a_positions, b_positions, _, _ = equi_join_layout(a, b, on)
    a_keys = [tuple(row[p] for p in a_positions) for row in a.tuples]
    b_keys = [tuple(row[p] for p in b_positions) for row in b.tuples]
    return _run_membership(
        a_keys, b_keys, len(on), variant, tagged, meter, trace, backend,
        name="semijoin-array" if variant == "counter" else "semijoin-array-fixed",
    )


def systolic_semijoin(
    a: Relation,
    b: Relation,
    on,
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> MembershipResult:
    """``A ⋉ B``: the §4 membership hardware fed with join columns only.

    Keeps the A tuples whose join-column combination matches some B
    tuple — the intersection array where "tuple" means "key".
    """
    from repro.relational.algebra import equi_join_layout

    equi_join_layout(a, b, on)  # validates columns and domains
    if not a or not b:
        return MembershipResult(Relation(a.schema), [], _empty_run())
    bits, run = _semijoin_membership(
        a, b, on, variant, tagged, meter, trace, backend
    )
    members = (row for row, keep in zip(a.tuples, bits) if keep)
    return MembershipResult(Relation(a.schema, members), bits, run)


def systolic_antijoin(
    a: Relation,
    b: Relation,
    on,
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> MembershipResult:
    """``A ▷ B``: the same bits, kept where FALSE (§4.3's inverter)."""
    from repro.relational.algebra import equi_join_layout

    equi_join_layout(a, b, on)
    if not a:
        return MembershipResult(Relation(a.schema), [], _empty_run())
    if not b:
        return MembershipResult(
            Relation(a.schema, a.tuples), [False] * len(a), _empty_run()
        )
    bits, run = _semijoin_membership(
        a, b, on, variant, tagged, meter, trace, backend
    )
    members = (row for row, member in zip(a.tuples, bits) if not member)
    return MembershipResult(Relation(a.schema, members), bits, run)
