"""The paper's operator arrays, built on the systolic substrate.

One module per array: linear tuple comparison (Fig 3-1), the 2-D
comparison array (Fig 3-3), intersection/difference (Fig 4-1),
remove-duplicates + union + projection (§5), join in all its variants
(Fig 6-1, §6.3), division (Fig 7-2), plus the §8 machinery: feeding
schedules, the fixed-relation variant, and blocked decomposition for
problems larger than the device.

Every operator takes ``backend=`` — ``"pulse"`` (default, the
cycle-accurate simulator) or ``"lattice"`` (vectorized wavefront
evaluation, bit-identical outputs); see :mod:`repro.systolic.engine`.
"""

from repro.arrays.base import ArrayRun, execute
from repro.arrays.comparison_array import (
    ComparisonMatrixResult,
    build_comparison_array,
    compare_all_pairs,
)
from repro.arrays.decomposition import (
    ArrayCapacity,
    BlockedReport,
    blocked_difference,
    blocked_divide,
    blocked_intersection,
    blocked_join,
    blocked_pair_matrix,
    blocked_remove_duplicates,
    blocked_union,
)
from repro.arrays.division import (
    DivisionResult,
    DivisionSchedule,
    build_division_array,
    systolic_divide,
)
from repro.arrays.hexagonal import (
    BOOLEAN_SEMIRING,
    COMPARISON_SEMIRING,
    HexComparisonResult,
    Semiring,
    hex_compare_all_pairs,
    hex_matrix_product,
)
from repro.arrays.join import systolic_dynamic_theta_join
from repro.arrays.duplicates import (
    DedupResult,
    build_remove_duplicates_array,
    systolic_projection,
    systolic_remove_duplicates,
    systolic_union,
)
from repro.arrays.intersection import (
    MembershipResult,
    build_intersection_array,
    systolic_difference,
    systolic_intersection,
    systolic_membership_vector,
)
from repro.arrays.join import (
    JoinResult,
    build_join_array,
    systolic_join,
    systolic_theta_join,
)
from repro.arrays.linear_comparison import (
    LinearComparisonResult,
    build_linear_comparison,
    compare_tuples,
)
from repro.arrays.schedule import CounterStreamSchedule, FixedRelationSchedule

__all__ = [
    "ArrayCapacity",
    "ArrayRun",
    "BOOLEAN_SEMIRING",
    "BlockedReport",
    "COMPARISON_SEMIRING",
    "HexComparisonResult",
    "Semiring",
    "ComparisonMatrixResult",
    "CounterStreamSchedule",
    "DedupResult",
    "DivisionResult",
    "DivisionSchedule",
    "FixedRelationSchedule",
    "JoinResult",
    "LinearComparisonResult",
    "MembershipResult",
    "blocked_difference",
    "blocked_divide",
    "blocked_intersection",
    "blocked_join",
    "blocked_pair_matrix",
    "blocked_remove_duplicates",
    "blocked_union",
    "build_comparison_array",
    "build_division_array",
    "build_intersection_array",
    "build_join_array",
    "build_linear_comparison",
    "build_remove_duplicates_array",
    "compare_all_pairs",
    "compare_tuples",
    "execute",
    "hex_compare_all_pairs",
    "hex_matrix_product",
    "systolic_difference",
    "systolic_divide",
    "systolic_dynamic_theta_join",
    "systolic_intersection",
    "systolic_join",
    "systolic_membership_vector",
    "systolic_projection",
    "systolic_remove_duplicates",
    "systolic_theta_join",
    "systolic_union",
]
