"""The linear comparison array of Fig 3-1: one tuple comparison.

``m`` comparison processors in a row.  Elements ``a_k`` and ``b_k`` are
staggered so both reach processor ``k`` on pulse ``k``; the travelling
partial result enters processor 0 as TRUE (or any chosen seed — §3.1
notes a FALSE seed guarantees a FALSE answer, the hook §5 exploits) and
leaves processor ``m−1`` on pulse ``m−1`` as the tuple-equality bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arrays.base import ArrayRun, run_array
from repro.errors import SimulationError
from repro.systolic.cells import ComparisonCell
from repro.systolic.metrics import ActivityMeter
from repro.systolic.streams import ScheduleFeeder
from repro.systolic.trace import TraceRecorder
from repro.systolic.values import Token
from repro.systolic.wiring import Network

__all__ = ["LinearComparisonResult", "build_linear_comparison", "compare_tuples"]


@dataclass
class LinearComparisonResult:
    """Outcome of one linear-array tuple comparison."""

    equal: bool
    result_pulse: int
    run: ArrayRun


def build_linear_comparison(
    a: Sequence[int],
    b: Sequence[int],
    seed: bool = True,
    tagged: bool = False,
) -> tuple[Network, dict[str, tuple[int, int]]]:
    """Assemble the Fig 3-1 array for one staggered tuple pair."""
    if len(a) != len(b):
        raise SimulationError(
            f"tuples must have equal arity: {len(a)} vs {len(b)}"
        )
    if not a:
        raise SimulationError("cannot compare zero-arity tuples")
    arity = len(a)
    network = Network("linear-comparison")
    layout: dict[str, tuple[int, int]] = {}
    for k in range(arity):
        network.add(ComparisonCell(f"cmp[{k}]"))
        layout[f"cmp[{k}]"] = (0, k)
    for k in range(arity):
        name = f"cmp[{k}]"
        if k + 1 < arity:
            network.connect(name, "t_out", f"cmp[{k + 1}]", "t_in")
        network.feed(
            name, "a_in",
            ScheduleFeeder({k: Token(a[k], ("a", 0, k) if tagged else None)}),
        )
        network.feed(
            name, "b_in",
            ScheduleFeeder({k: Token(b[k], ("b", 0, k) if tagged else None)}),
        )
    network.feed(
        "cmp[0]", "t_in",
        ScheduleFeeder({0: Token(bool(seed), ("t", 0, 0) if tagged else None)}),
    )
    network.tap("t", f"cmp[{arity - 1}]", "t_out")
    return network, layout


def compare_tuples(
    a: Sequence[int],
    b: Sequence[int],
    seed: bool = True,
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
) -> LinearComparisonResult:
    """Compare two tuples on the linear array; ``m`` pulses end to end."""
    network, _ = build_linear_comparison(a, b, seed=seed, tagged=tagged)
    arity = len(a)
    simulator = run_array(network, pulses=arity, meter=meter, trace=trace)
    collector = simulator.collector("t")
    expected_pulse = arity - 1
    token = collector.at(expected_pulse)
    if token is None:
        raise SimulationError(
            f"no result left the array on pulse {expected_pulse}; "
            f"arrivals: {collector.pulses()}"
        )
    return LinearComparisonResult(
        equal=bool(token.value),
        result_pulse=expected_pulse,
        run=ArrayRun(
            pulses=arity, rows=1, cols=arity, cells=arity,
            meter=meter, trace=trace,
        ),
    )
