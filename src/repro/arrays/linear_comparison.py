"""The linear comparison array of Fig 3-1: one tuple comparison.

``m`` comparison processors in a row.  Elements ``a_k`` and ``b_k`` are
staggered so both reach processor ``k`` on pulse ``k``; the travelling
partial result enters processor 0 as TRUE (or any chosen seed — §3.1
notes a FALSE seed guarantees a FALSE answer, the hook §5 exploits) and
leaves processor ``m−1`` on pulse ``m−1`` as the tuple-equality bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arrays.base import ArrayRun, execute
from repro.errors import SimulationError
from repro.systolic.engine import LinearPlan
from repro.systolic.engine.materialize import build_linear_network
from repro.systolic.metrics import ActivityMeter
from repro.systolic.trace import TraceRecorder
from repro.systolic.wiring import Network

__all__ = ["LinearComparisonResult", "build_linear_comparison", "compare_tuples"]


@dataclass
class LinearComparisonResult:
    """Outcome of one linear-array tuple comparison."""

    equal: bool
    result_pulse: int
    run: ArrayRun


def build_linear_comparison(
    a: Sequence[int],
    b: Sequence[int],
    seed: bool = True,
    tagged: bool = False,
) -> tuple[Network, dict[str, tuple[int, int]]]:
    """Assemble the Fig 3-1 array for one staggered tuple pair."""
    return build_linear_network(a, b, seed=seed, tagged=tagged)


def compare_tuples(
    a: Sequence[int],
    b: Sequence[int],
    seed: bool = True,
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> LinearComparisonResult:
    """Compare two tuples on the linear array; ``m`` pulses end to end."""
    plan = LinearPlan(a, b, seed=seed, tagged=tagged)
    result = execute(plan, backend=backend, meter=meter, trace=trace)
    collector = result.collector("t")
    expected_pulse = plan.arity - 1
    token = collector.at(expected_pulse)
    if token is None:
        raise SimulationError(
            f"no result left the array on pulse {expected_pulse}; "
            f"arrivals: {collector.pulses()}"
        )
    return LinearComparisonResult(
        equal=bool(token.value),
        result_pulse=expected_pulse,
        run=ArrayRun(
            pulses=result.pulses, rows=1, cols=plan.arity, cells=result.cells,
            meter=meter, trace=trace, backend=result.engine,
        ),
    )
