"""The join array of §6 (Fig 6-1).

The join columns of A stream down, the join columns of B stream up, and
each processor emits the individual ``t_ij`` off the right edge — here
there is no accumulation: "we are interested in the t_ij individually"
(§6.2).  The matrix ``T`` marks exactly the matching pairs; generating
the join relation C from T is then the straightforward retrieval §6.2
describes: for each TRUE ``t_ij``, concatenate ``a_i`` and ``b_j``,
dropping the redundant matched column(s).

Three generalizations, all from §6.3:

* **more than one column** — one processor column per joined column
  pair, partial results chained left-to-right (the array has ``c``
  columns instead of 1);
* **θ-join** — each processor column is preloaded with a comparison
  operator (<, >, ≤, ≥, ≠, =);
* **fixed-relation variant** (§8) — B's join columns preloaded, only A
  streaming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.arrays.base import (
    ArrayRun,
    attach_op_stream,
    build_counter_stream_grid,
    build_fixed_relation_grid,
    cmp_name,
    execute,
)
from repro.arrays.schedule import CounterStreamSchedule, FixedRelationSchedule
from repro.errors import SimulationError
from repro.relational.algebra import equi_join_layout, theta_join_layout
from repro.relational.relation import Relation
from repro.relational.schema import ColumnRef, Schema
from repro.systolic.cell import Cell
from repro.systolic.cells import ThetaCell
from repro.systolic.engine import GridPlan
from repro.systolic.metrics import ActivityMeter
from repro.systolic.trace import TraceRecorder
from repro.systolic.wiring import Network

__all__ = [
    "JoinResult",
    "build_join_array",
    "build_dynamic_join_array",
    "systolic_join",
    "systolic_theta_join",
    "systolic_dynamic_theta_join",
]


@dataclass
class JoinResult:
    """Outcome of a join-array run."""

    relation: Relation
    #: the TRUE entries of T as (i, j) pairs, in exit order
    matches: list[tuple[int, int]]
    run: ArrayRun


def _join_schedule(
    n_a: int, n_b: int, arity: int, variant: str
) -> CounterStreamSchedule | FixedRelationSchedule:
    if variant == "counter":
        return CounterStreamSchedule(n_a=n_a, n_b=n_b, arity=arity)
    if variant == "fixed":
        return FixedRelationSchedule(n_a=n_a, n_b=n_b, arity=arity)
    raise SimulationError(f"unknown variant {variant!r}; use 'counter' or 'fixed'")


def build_join_array(
    a_columns: Sequence[Sequence[int]],
    b_columns: Sequence[Sequence[int]],
    ops: Sequence[str],
    variant: str = "counter",
    tagged: bool = False,
) -> tuple[Network, CounterStreamSchedule | FixedRelationSchedule, dict[str, tuple[int, int]]]:
    """Assemble the Fig 6-1 array over projected join-column tuples.

    ``a_columns[i]`` / ``b_columns[j]`` hold only the joined columns of
    each tuple (the full tuples never enter the array — §6.2 streams
    "the column C_A of relation A" through the processors).  ``ops``
    preloads one comparison operator per processor column.
    """
    if not a_columns or not b_columns:
        raise SimulationError("the join array needs non-empty relations")
    if len(ops) != len(a_columns[0]):
        raise SimulationError(
            f"need one operator per join column: {len(ops)} ops for "
            f"arity {len(a_columns[0])}"
        )

    def theta_factory(name: str, row: int, col: int) -> Cell:
        return ThetaCell(name, op=ops[col])

    schedule = _join_schedule(len(a_columns), len(b_columns), len(ops), variant)
    if variant == "counter":
        network, layout = build_counter_stream_grid(
            a_columns, b_columns, schedule,
            t_init=None, cell_factory=theta_factory, tagged=tagged,
            name="join-array",
        )
    else:
        network, layout = build_fixed_relation_grid(
            a_columns, b_columns, schedule,
            t_init=None, cell_factory=theta_factory, tagged=tagged,
            name="join-array-fixed",
        )
    for row in range(schedule.rows):
        network.tap(f"t_row[{row}]", cmp_name(row, schedule.arity - 1), "t_out")
    return network, schedule, layout


def _collect_matches_columnar(
    result, schedule, tagged: bool
) -> Optional[list[tuple[int, int]]]:
    """Bulk decode of the row taps: the Token-free join fast path.

    ``pair_from_exit`` is affine in (row, pulse), so every arrival
    decodes in one vectorized inversion; validity (parity, bounds,
    duplicates, ghost tags, completeness) and the exit ordering of the
    matches are checked in bulk too.  Returns ``None`` when ``result``
    has no columnar taps (eager pulse-engine runs).
    """
    tap_of = getattr(result, "tap", None)
    if tap_of is None:
        return None
    per_row = []
    for row in range(schedule.rows):
        tap = tap_of(f"t_row[{row}]")
        if tap is None:
            return None
        per_row.append(tap)
    rows = np.concatenate([
        np.full(len(tap), row, dtype=np.int64)
        for row, tap in enumerate(per_row)
    ])
    pulses = np.concatenate([tap.pulses for tap in per_row])
    values = np.concatenate([
        np.asarray(tap.values, dtype=bool) for tap in per_row
    ])

    m = schedule.arity
    if isinstance(schedule, CounterStreamSchedule):
        d = rows - schedule.mid
        total = pulses - (m - 1) - schedule.mid  # i + j
        bad = (total - d) % 2 != 0
        i = (total - d) // 2
        j = i + d
    else:
        j = rows
        i = pulses - rows - (m - 1)
        bad = np.zeros(len(pulses), dtype=bool)
    bad |= (i < 0) | (i >= schedule.n_a) | (j < 0) | (j >= schedule.n_b)
    if bad.any():
        # Re-raise through the scalar decoder for the exact diagnostic.
        k = int(np.argmax(bad))
        schedule.pair_from_exit(int(rows[k]), int(pulses[k]))

    keys = i * schedule.n_b + j
    ordered = np.sort(keys)
    dup = np.flatnonzero(ordered[1:] == ordered[:-1])
    if dup.size:
        key = int(ordered[dup[0]])
        raise SimulationError(
            f"pair ({key // schedule.n_b}, {key % schedule.n_b}) exited twice"
        )
    if tagged:
        offset = 0
        for tap in per_row:
            if tap.tag_kind is None:
                offset += len(tap)
                continue
            size = len(tap)
            span = slice(offset, offset + size)
            if (tap.tag_kind != "t"
                    or not np.array_equal(tap.tag_indices[0], i[span])
                    or not np.array_equal(tap.tag_indices[1], j[span])):
                raise SimulationError(
                    f"arrivals at tap {tap.name!r} carry tags inconsistent "
                    f"with their decoded pairs"
                )
            offset += size
    expected = schedule.n_a * schedule.n_b
    if len(keys) != expected:
        raise SimulationError(
            f"only {len(keys)} of {expected} pair results exited the "
            f"join array"
        )

    hits = np.flatnonzero(values)
    order = np.lexsort((j[hits], i[hits], pulses[hits]))
    sel = hits[order]
    return list(zip(i[sel].tolist(), j[sel].tolist()))


def _collect_matches(
    simulator, schedule, tagged: bool
) -> list[tuple[int, int]]:
    """Decode right-edge arrivals into the TRUE (i, j) pairs.

    ``simulator`` is anything with a ``collector(name)`` method — the
    pulse simulator or an :class:`~repro.systolic.engine.plan.EngineRun`.
    Columnar runs decode in bulk via :func:`_collect_matches_columnar`.
    """
    fast = _collect_matches_columnar(simulator, schedule, tagged)
    if fast is not None:
        return fast
    matches: list[tuple[int, int, int]] = []  # (pulse, i, j) for ordering
    seen: set[tuple[int, int]] = set()
    for row in range(schedule.rows):
        for pulse, token in simulator.collector(f"t_row[{row}]"):
            i, j = schedule.pair_from_exit(row, pulse)
            if (i, j) in seen:
                raise SimulationError(f"pair ({i}, {j}) exited twice")
            seen.add((i, j))
            if tagged and token.tag is not None and token.tag != ("t", i, j):
                raise SimulationError(
                    f"arrival decoded as pair ({i}, {j}) but carries tag "
                    f"{token.tag!r}"
                )
            if token.value:
                matches.append((pulse, i, j))
    expected = schedule.n_a * schedule.n_b
    if len(seen) != expected:
        raise SimulationError(
            f"only {len(seen)} of {expected} pair results exited the join array"
        )
    matches.sort()
    return [(i, j) for _, i, j in matches]


def _run_join(
    a: Relation,
    b: Relation,
    a_positions: list[int],
    b_positions: list[int],
    schema: Schema,
    b_keep: list[int],
    ops: Sequence[str],
    variant: str,
    tagged: bool,
    meter: Optional[ActivityMeter],
    trace: Optional[TraceRecorder],
    backend=None,
    dynamic_ops: bool = False,
) -> JoinResult:
    if not a or not b:
        return JoinResult(
            Relation(schema), [], ArrayRun(pulses=0, rows=0, cols=0, cells=0)
        )
    a_columns = [tuple(row[p] for p in a_positions) for row in a.tuples]
    b_columns = [tuple(row[p] for p in b_positions) for row in b.tuples]
    schedule = _join_schedule(len(a_columns), len(b_columns), len(ops), variant)
    plan = GridPlan(
        a_columns, b_columns, schedule,
        ops=tuple(ops), dynamic_ops=dynamic_ops, row_taps=True, tagged=tagged,
        name="dynamic-join-array" if dynamic_ops
        else ("join-array" if variant == "counter" else "join-array-fixed"),
    )
    result = execute(plan, backend=backend, meter=meter, trace=trace)
    matches = _collect_matches(result, schedule, tagged)
    rows = []
    for i, j in matches:
        row_b = b.tuples[j]
        rows.append(a.tuples[i] + tuple(row_b[p] for p in b_keep))
    run = ArrayRun(
        pulses=result.pulses, rows=schedule.rows, cols=schedule.arity,
        cells=result.cells, meter=meter, trace=trace, backend=result.engine,
    )
    return JoinResult(Relation(schema, rows), matches, run)


def systolic_join(
    a: Relation,
    b: Relation,
    on: Sequence[tuple[ColumnRef, ColumnRef]],
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> JoinResult:
    """Equi-join on the Fig 6-1 array (single or multiple columns)."""
    a_positions, b_positions, schema, b_keep = equi_join_layout(a, b, on)
    ops = ["=="] * len(on)
    return _run_join(
        a, b, a_positions, b_positions, schema, b_keep, ops,
        variant=variant, tagged=tagged, meter=meter, trace=trace,
        backend=backend,
    )


def systolic_theta_join(
    a: Relation,
    b: Relation,
    on: Sequence[tuple[ColumnRef, ColumnRef]],
    ops: Sequence[str],
    variant: str = "counter",
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> JoinResult:
    """θ-join on the array, processors preloaded with ``ops`` (§6.3.2)."""
    a_positions, b_positions, schema, b_keep = theta_join_layout(a, b, on, ops)
    return _run_join(
        a, b, a_positions, b_positions, schema, b_keep, ops,
        variant=variant, tagged=tagged, meter=meter, trace=trace,
        backend=backend,
    )


def build_dynamic_join_array(
    a_columns: Sequence[Sequence[int]],
    b_columns: Sequence[Sequence[int]],
    ops: Sequence[str],
    tagged: bool = False,
) -> tuple[Network, CounterStreamSchedule, dict[str, tuple[int, int]]]:
    """§6.3.2's other programmability option: op codes travel with the data.

    Same geometry as :func:`build_join_array`, but the processors are
    :class:`~repro.systolic.cells.DynamicThetaCell`\\ s and the comparison
    op codes stream down each column alongside relation A's elements
    (same staggering, same two-pulse tuple spacing).
    """
    from repro.systolic.cells import DynamicThetaCell

    if not a_columns or not b_columns:
        raise SimulationError("the join array needs non-empty relations")
    if len(ops) != len(a_columns[0]):
        raise SimulationError(
            f"need one op code per join column: {len(ops)} ops for "
            f"arity {len(a_columns[0])}"
        )

    def dynamic_factory(name: str, row: int, col: int) -> Cell:
        return DynamicThetaCell(name)

    schedule = CounterStreamSchedule(
        n_a=len(a_columns), n_b=len(b_columns), arity=len(ops)
    )
    network, layout = build_counter_stream_grid(
        a_columns, b_columns, schedule,
        t_init=None, cell_factory=dynamic_factory, tagged=tagged,
        name="dynamic-join-array",
    )
    attach_op_stream(network, schedule, ops)
    for row in range(schedule.rows):
        network.tap(f"t_row[{row}]", cmp_name(row, schedule.arity - 1), "t_out")
    return network, schedule, layout


def systolic_dynamic_theta_join(
    a: Relation,
    b: Relation,
    on: Sequence[tuple[ColumnRef, ColumnRef]],
    ops: Sequence[str],
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> JoinResult:
    """θ-join with the ops streamed alongside the data (§6.3.2).

    Produces exactly what :func:`systolic_theta_join` produces with the
    same arguments — the two are the paper's two programmability
    options for one piece of hardware.
    """
    a_positions, b_positions, schema, b_keep = theta_join_layout(a, b, on, ops)
    return _run_join(
        a, b, a_positions, b_positions, schema, b_keep, ops,
        variant="counter", tagged=tagged, meter=meter, trace=trace,
        backend=backend, dynamic_ops=True,
    )
