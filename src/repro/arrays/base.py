"""Shared execution kit for the operator arrays.

The operator modules in this package describe each §3–§7 array as an
:class:`~repro.systolic.engine.plan.ExecutionPlan` and hand it to
:func:`execute`, which dispatches to a pluggable backend — the
pulse-level reference simulator or the vectorized lattice engine (see
:mod:`repro.systolic.engine`).  The network builders that used to live
here moved to :mod:`repro.systolic.engine.materialize`; they are
re-exported under their old names for callers that assemble networks
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.systolic.engine import resolve_backend
from repro.systolic.engine.materialize import (
    CellFactory,
    attach_accumulation_column,
    attach_op_stream,
    build_counter_stream_grid,
    build_fixed_relation_grid,
)
from repro.systolic.engine.plan import (
    EngineRun,
    ExecutionPlan,
    TInit,
    acc_name,
    check_tuples as _check_tuples_impl,
    cmp_name,
)
from repro.systolic.engine.schedule import CounterStreamSchedule
from repro.systolic.metrics import ActivityMeter
from repro.systolic.simulator import SystolicSimulator
from repro.systolic.trace import TraceRecorder
from repro.systolic.wiring import Network

__all__ = [
    "ArrayRun",
    "execute",
    "accumulator_bits",
    "build_counter_stream_grid",
    "build_fixed_relation_grid",
    "attach_accumulation_column",
    "attach_op_stream",
    "run_array",
    "cmp_name",
    "acc_name",
    "TInit",
    "CellFactory",
]


@dataclass
class ArrayRun:
    """Operational record of one array execution."""

    pulses: int
    rows: int
    cols: int
    cells: int
    meter: Optional[ActivityMeter] = None
    trace: Optional[TraceRecorder] = None
    #: which engine produced this run ("pulse", "lattice", ...)
    backend: str = "pulse"

    @property
    def utilization(self) -> Optional[float]:
        """Busy fraction over the run, when a meter was attached."""
        if self.meter is None:
            return None
        return self.meter.report(self.cells).utilization


def execute(
    plan: ExecutionPlan,
    backend=None,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
) -> EngineRun:
    """Run a plan on the chosen backend (default: the pulse simulator).

    ``backend`` is an engine name (``"pulse"``, ``"lattice"``), an
    :class:`~repro.systolic.engine.plan.Engine` instance, or ``None``
    for the default.
    """
    return resolve_backend(backend).run(plan, meter=meter, trace=trace)


def accumulator_bits(
    result, schedule, n: int, tagged: bool
) -> Optional[list[bool]]:
    """Decode the ``t_i`` accumulator tap from columnar arrays in bulk.

    The Token-free counterpart of the per-record
    ``tuple_from_accumulator_exit`` loop: the exit pulses are affine in
    the tuple index, so the whole vector decodes as one arithmetic
    inversion plus the same validity checks (range, duplicates, ghost
    tags, completeness).  Returns ``None`` when ``result`` carries no
    columnar ``t_i`` tap — eager (pulse-engine) runs — so callers fall
    back to the Token-record path.
    """
    tap = getattr(result, "tap", lambda name: None)("t_i")
    if tap is None:
        return None
    pulses = np.asarray(tap.pulses, dtype=np.int64)
    step = 2 if isinstance(schedule, CounterStreamSchedule) else 1
    offset = pulses - (schedule.arity + schedule.rows - 1)
    idx = offset // step
    bad = (offset < 0) | (offset % step != 0) | (idx >= n)
    if bad.any():
        # Re-raise through the scalar decoder for the exact diagnostic.
        schedule.tuple_from_accumulator_exit(int(pulses[np.argmax(bad)]))
    ordered = np.sort(idx)
    dup = np.flatnonzero(ordered[1:] == ordered[:-1])
    if dup.size:
        raise SimulationError(
            f"tuple {int(ordered[dup[0]])} exited the accumulator twice"
        )
    if tagged and tap.tag_kind is not None:
        mismatch = (
            tap.tag_kind != "acc"
            or not np.array_equal(tap.tag_indices[0], idx)
        )
        if mismatch:
            k = (0 if tap.tag_kind != "acc"
                 else int(np.flatnonzero(tap.tag_indices[0] != idx)[0]))
            tag = (tap.tag_kind, int(tap.tag_indices[0][k]))
            raise SimulationError(
                f"arrival decoded as tuple {int(idx[k])} but carries tag "
                f"{tag!r}"
            )
    if idx.size != n:
        present = np.zeros(n, dtype=bool)
        present[idx] = True
        missing = np.flatnonzero(~present)[:8].tolist()
        raise SimulationError(
            f"tuples {missing} never exited the accumulation array"
        )
    vector = np.empty(n, dtype=bool)
    vector[idx] = np.asarray(tap.values, dtype=bool)
    return vector.tolist()


def run_array(
    network: Network,
    pulses: int,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
) -> SystolicSimulator:
    """Simulate ``pulses`` pulses and return the simulator (for taps)."""
    simulator = SystolicSimulator(network, meter=meter, observer=trace)
    simulator.run(pulses)
    return simulator


def _check_tuples(tuples, expected_n, arity, label) -> None:
    _check_tuples_impl(tuples, expected_n, arity, label)
