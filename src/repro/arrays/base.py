"""Shared execution kit for the operator arrays.

The operator modules in this package describe each §3–§7 array as an
:class:`~repro.systolic.engine.plan.ExecutionPlan` and hand it to
:func:`execute`, which dispatches to a pluggable backend — the
pulse-level reference simulator or the vectorized lattice engine (see
:mod:`repro.systolic.engine`).  The network builders that used to live
here moved to :mod:`repro.systolic.engine.materialize`; they are
re-exported under their old names for callers that assemble networks
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.systolic.engine import resolve_backend
from repro.systolic.engine.materialize import (
    CellFactory,
    attach_accumulation_column,
    attach_op_stream,
    build_counter_stream_grid,
    build_fixed_relation_grid,
)
from repro.systolic.engine.plan import (
    EngineRun,
    ExecutionPlan,
    TInit,
    acc_name,
    check_tuples as _check_tuples_impl,
    cmp_name,
)
from repro.systolic.metrics import ActivityMeter
from repro.systolic.simulator import SystolicSimulator
from repro.systolic.trace import TraceRecorder
from repro.systolic.wiring import Network

__all__ = [
    "ArrayRun",
    "execute",
    "build_counter_stream_grid",
    "build_fixed_relation_grid",
    "attach_accumulation_column",
    "attach_op_stream",
    "run_array",
    "cmp_name",
    "acc_name",
    "TInit",
    "CellFactory",
]


@dataclass
class ArrayRun:
    """Operational record of one array execution."""

    pulses: int
    rows: int
    cols: int
    cells: int
    meter: Optional[ActivityMeter] = None
    trace: Optional[TraceRecorder] = None
    #: which engine produced this run ("pulse", "lattice", ...)
    backend: str = "pulse"

    @property
    def utilization(self) -> Optional[float]:
        """Busy fraction over the run, when a meter was attached."""
        if self.meter is None:
            return None
        return self.meter.report(self.cells).utilization


def execute(
    plan: ExecutionPlan,
    backend=None,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
) -> EngineRun:
    """Run a plan on the chosen backend (default: the pulse simulator).

    ``backend`` is an engine name (``"pulse"``, ``"lattice"``), an
    :class:`~repro.systolic.engine.plan.Engine` instance, or ``None``
    for the default.
    """
    return resolve_backend(backend).run(plan, meter=meter, trace=trace)


def run_array(
    network: Network,
    pulses: int,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
) -> SystolicSimulator:
    """Simulate ``pulses`` pulses and return the simulator (for taps)."""
    simulator = SystolicSimulator(network, meter=meter, observer=trace)
    simulator.run(pulses)
    return simulator


def _check_tuples(tuples, expected_n, arity, label) -> None:
    _check_tuples_impl(tuples, expected_n, arity, label)
