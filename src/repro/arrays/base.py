"""Shared construction kit for the operator arrays.

The arrays of §3–§7 are all assembled from the same parts: a grid of
processors (orthogonally connected, Fig 2-1a), column feeders that
stagger tuple elements (§3.1), left-edge injectors for initial partial
results, and an optional accumulation column (Fig 4-1).  This module
builds those parts once so each operator module only states what is
*different* about its array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.arrays.schedule import CounterStreamSchedule, FixedRelationSchedule
from repro.errors import SimulationError
from repro.systolic.cell import Cell
from repro.systolic.cells import AccumulationCell, ComparisonCell
from repro.systolic.metrics import ActivityMeter
from repro.systolic.simulator import SystolicSimulator
from repro.systolic.streams import ConstantFeeder, PeriodicFeeder, ScheduleFeeder
from repro.systolic.trace import TraceRecorder
from repro.systolic.values import Token
from repro.systolic.wiring import Network

__all__ = [
    "ArrayRun",
    "build_counter_stream_grid",
    "build_fixed_relation_grid",
    "attach_accumulation_column",
    "run_array",
    "cmp_name",
    "acc_name",
]

#: Chooses the initial t fed for pair (i, j): TRUE everywhere for
#: intersection, lower-triangle-only for remove-duplicates (§5).
TInit = Callable[[int, int], bool]

#: Builds the processor for grid position (row, col) — ComparisonCell
#: for the comparison array, ThetaCell for join columns.
CellFactory = Callable[[str, int, int], Cell]


def cmp_name(row: int, col: int) -> str:
    """Canonical name of the comparator at grid position (row, col)."""
    return f"cmp[{row},{col}]"


def acc_name(row: int) -> str:
    """Canonical name of the accumulation processor beside ``row``."""
    return f"acc[{row}]"


@dataclass
class ArrayRun:
    """Operational record of one array execution."""

    pulses: int
    rows: int
    cols: int
    cells: int
    meter: Optional[ActivityMeter] = None
    trace: Optional[TraceRecorder] = None

    @property
    def utilization(self) -> Optional[float]:
        """Busy fraction over the run, when a meter was attached."""
        if self.meter is None:
            return None
        return self.meter.report(self.cells).utilization


def _default_cell_factory(name: str, row: int, col: int) -> Cell:
    return ComparisonCell(name)


def _element_token(
    kind: str, tuple_index: int, col: int, value: int, tagged: bool
) -> Token:
    return Token(value, (kind, tuple_index, col) if tagged else None)


def build_counter_stream_grid(
    a_tuples: Sequence[Sequence[int]],
    b_tuples: Sequence[Sequence[int]],
    schedule: CounterStreamSchedule,
    t_init: Optional[TInit] = None,
    cell_factory: CellFactory = _default_cell_factory,
    tagged: bool = False,
    name: str = "comparison-array",
) -> tuple[Network, dict[str, tuple[int, int]]]:
    """Assemble the Fig 3-3 grid: A streams down, B streams up.

    Returns the network and a layout (cell name → (row, col)) for the
    trace renderer.  ``t_init`` installs the left-edge partial-result
    injections; omit it for the join array, whose cells originate their
    own ``t`` at the first column (§6.2).
    """
    rows, cols = schedule.rows, schedule.arity
    _check_tuples(a_tuples, schedule.n_a, cols, "A")
    _check_tuples(b_tuples, schedule.n_b, cols, "B")

    network = Network(name)
    layout: dict[str, tuple[int, int]] = {}
    for row in range(rows):
        for col in range(cols):
            cell = cell_factory(cmp_name(row, col), row, col)
            network.add(cell)
            layout[cell.name] = (row, col)

    for row in range(rows):
        for col in range(cols):
            if row + 1 < rows:
                network.connect(cmp_name(row, col), "a_out",
                                cmp_name(row + 1, col), "a_in")
                network.connect(cmp_name(row + 1, col), "b_out",
                                cmp_name(row, col), "b_in")
            if col + 1 < cols:
                network.connect(cmp_name(row, col), "t_out",
                                cmp_name(row, col + 1), "t_in")

    for col in range(cols):
        a_stream = [
            _element_token("a", i, col, row_values[col], tagged)
            for i, row_values in enumerate(a_tuples)
        ]
        network.feed(cmp_name(0, col), "a_in",
                     PeriodicFeeder(a_stream, start=col, period=2))
        b_stream = [
            _element_token("b", j, col, row_values[col], tagged)
            for j, row_values in enumerate(b_tuples)
        ]
        network.feed(cmp_name(rows - 1, col), "b_in",
                     PeriodicFeeder(b_stream, start=col, period=2))

    if t_init is not None:
        for row in range(rows):
            injections = {
                schedule.t_init_pulse(i, j): Token(
                    bool(t_init(i, j)), ("t", i, j) if tagged else None
                )
                for i, j in schedule.row_pairs(row)
            }
            if injections:
                network.feed(cmp_name(row, 0), "t_in",
                             ScheduleFeeder(injections))
    return network, layout


def build_fixed_relation_grid(
    a_tuples: Sequence[Sequence[int]],
    b_tuples: Sequence[Sequence[int]],
    schedule: FixedRelationSchedule,
    t_init: Optional[TInit] = None,
    cell_factory: CellFactory = _default_cell_factory,
    tagged: bool = False,
    name: str = "fixed-relation-array",
) -> tuple[Network, dict[str, tuple[int, int]]]:
    """Assemble the §8 variant: B preloaded (one tuple per row), A moves.

    Preloading is realized by a constant feeder on each cell's ``b_in``
    — the stored operand is simply always present, so the unmodified
    comparison processor serves both designs.
    """
    rows, cols = schedule.rows, schedule.arity
    _check_tuples(a_tuples, schedule.n_a, cols, "A")
    _check_tuples(b_tuples, schedule.n_b, cols, "B")

    network = Network(name)
    layout: dict[str, tuple[int, int]] = {}
    for row in range(rows):
        for col in range(cols):
            cell = cell_factory(cmp_name(row, col), row, col)
            network.add(cell)
            layout[cell.name] = (row, col)
            network.feed(
                cell.name, "b_in",
                ConstantFeeder(
                    _element_token("b", row, col, b_tuples[row][col], tagged)
                ),
            )

    for row in range(rows):
        for col in range(cols):
            if row + 1 < rows:
                network.connect(cmp_name(row, col), "a_out",
                                cmp_name(row + 1, col), "a_in")
            if col + 1 < cols:
                network.connect(cmp_name(row, col), "t_out",
                                cmp_name(row, col + 1), "t_in")

    for col in range(cols):
        a_stream = [
            _element_token("a", i, col, row_values[col], tagged)
            for i, row_values in enumerate(a_tuples)
        ]
        network.feed(cmp_name(0, col), "a_in",
                     PeriodicFeeder(a_stream, start=col, period=1))

    if t_init is not None:
        for row in range(rows):
            injections = {
                schedule.t_init_pulse(i, row): Token(
                    bool(t_init(i, row)), ("t", i, row) if tagged else None
                )
                for i in range(schedule.n_a)
            }
            network.feed(cmp_name(row, 0), "t_in", ScheduleFeeder(injections))
    return network, layout


def attach_accumulation_column(
    network: Network,
    schedule: CounterStreamSchedule | FixedRelationSchedule,
    layout: Optional[dict[str, tuple[int, int]]] = None,
    tagged: bool = False,
    tap: str = "t_i",
) -> None:
    """Bolt the Fig 4-1 accumulation array onto a comparison grid.

    One accumulation processor per row; each takes the row's final
    ``t_ij`` from the left and the descending ``t_i`` from above.  The
    descending value is seeded FALSE at the top on the schedule's seed
    pulses and tapped at the bottom under ``tap``.
    """
    rows, cols = schedule.rows, schedule.arity
    for row in range(rows):
        network.add(AccumulationCell(acc_name(row)))
        if layout is not None:
            layout[acc_name(row)] = (row, cols)
    for row in range(rows):
        network.connect(cmp_name(row, cols - 1), "t_out",
                        acc_name(row), "t_left")
        if row + 1 < rows:
            network.connect(acc_name(row), "t_bottom",
                            acc_name(row + 1), "t_top")
    seeds = {
        schedule.accumulator_seed_pulse(i): Token(
            False, ("acc", i) if tagged else None
        )
        for i in range(schedule.n_a)
    }
    network.feed(acc_name(0), "t_top", ScheduleFeeder(seeds))
    network.tap(tap, acc_name(rows - 1), "t_bottom")


def run_array(
    network: Network,
    pulses: int,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
) -> SystolicSimulator:
    """Simulate ``pulses`` pulses and return the simulator (for taps)."""
    simulator = SystolicSimulator(network, meter=meter, observer=trace)
    simulator.run(pulses)
    return simulator


def _check_tuples(
    tuples: Sequence[Sequence[int]], expected_n: int, arity: int, label: str
) -> None:
    if len(tuples) != expected_n:
        raise SimulationError(
            f"relation {label} has {len(tuples)} tuples but the schedule "
            f"expects {expected_n}"
        )
    for row_values in tuples:
        if len(row_values) != arity:
            raise SimulationError(
                f"relation {label} tuple {tuple(row_values)!r} has arity "
                f"{len(row_values)}, expected {arity}"
            )
