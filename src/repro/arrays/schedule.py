"""Feeding-schedule arithmetic — compatibility re-export.

The schedule classes moved to :mod:`repro.systolic.engine.schedule` so
both execution engines (pulse-level and vectorized) can share them;
this module keeps the historical import path working.
"""

from __future__ import annotations

from repro.systolic.engine.schedule import (
    CounterStreamSchedule,
    DivisionSchedule,
    FixedRelationSchedule,
)

__all__ = ["CounterStreamSchedule", "FixedRelationSchedule", "DivisionSchedule"]
