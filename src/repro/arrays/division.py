"""The division array of §7 (Fig 7-2): dividend array + divisor array.

Restricted case, as in the paper: dividend A is (projected to) a binary
relation with columns (A₁, A₂); divisor B is unary.  The **dividend
array** has two processor columns and one row per *distinct* A₁ value
(identified, as §7 notes, by the remove-duplicates array — we call the
software-equivalent first-occurrence scan).  Pairs ``(x, y) ∈ A``
stream in from the bottom, ``x`` up the left column and ``y`` one step
behind up the right column.  A left processor matching its stored
element ships TRUE right, arriving exactly with the ``y``, which the
right processor then gates out toward the divisor array — or replaces
by an explicit null.

Each **divisor array** row is preloaded with all of B's elements; the
gated ``y`` stream flows along it, each processor latching a sticky
"seen my element" flag.  After the dividend has passed, an AND token
sweeps each row one pulse behind the last ``y``; a TRUE at the right
edge certifies that row's ``x`` is paired with *every* divisor element
— i.e. belongs to the quotient ``C₁``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arrays.base import ArrayRun, execute
from repro.arrays.schedule import DivisionSchedule
from repro.errors import SimulationError
from repro.relational.relation import Relation
from repro.relational.schema import ColumnRef
from repro.systolic.engine import DivisionPlan
from repro.systolic.engine.materialize import build_division_network
from repro.systolic.metrics import ActivityMeter
from repro.systolic.trace import TraceRecorder
from repro.systolic.wiring import Network

__all__ = [
    "DivisionSchedule",
    "DivisionResult",
    "build_division_array",
    "systolic_divide",
    "systolic_divide_general",
]


@dataclass
class DivisionResult:
    """Outcome of a division-array run."""

    relation: Relation
    #: distinct A₁ values, in first-appearance (= dividend row) order
    distinct_x: list[int]
    #: quotient_bits[r] — TRUE iff distinct_x[r] belongs to the quotient
    quotient_bits: list[bool]
    run: ArrayRun


def build_division_array(
    pairs: Sequence[tuple[int, int]],
    distinct_x: Sequence[int],
    divisor: Sequence[int],
    tagged: bool = False,
) -> tuple[Network, DivisionSchedule, dict[str, tuple[int, int]]]:
    """Assemble Fig 7-2 for encoded ``(x, y)`` pairs and divisor values."""
    schedule = DivisionSchedule(
        n_pairs=len(pairs), p_rows=len(distinct_x), n_divisor=len(divisor)
    )
    network, layout = build_division_network(
        pairs, distinct_x, divisor, schedule, tagged=tagged
    )
    return network, schedule, layout


def _quotient_bits_columnar(result, schedule) -> Optional[list[bool]]:
    """Read the quotient bits straight off the columnar ``and_row`` taps
    (no Token materialization); None on eager pulse-engine runs."""
    tap_of = getattr(result, "tap", None)
    if tap_of is None:
        return None
    bits: list[bool] = []
    for row in range(schedule.p_rows):
        tap = tap_of(f"and_row[{row}]")
        if tap is None:
            return None
        if len(tap) != 1:
            raise SimulationError(
                f"divisor row {row} produced {len(tap)} quotient bits, "
                f"expected exactly 1"
            )
        schedule.row_from_result(row, int(tap.pulses[0]))
        bits.append(bool(tap.values[0]))
    return bits


def systolic_divide(
    a: Relation,
    b: Relation,
    a_value: ColumnRef = 1,
    a_group: ColumnRef | None = None,
    b_value: ColumnRef = 0,
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> DivisionResult:
    """``A ÷ B`` on the division array (§7).

    Column conventions follow :func:`repro.relational.algebra.divide`:
    ``a_group`` is the kept column A₁ (default: the other column of a
    binary A), ``a_value`` the matched column A₂, ``b_value`` the
    divisor column B₁.  An empty divisor makes every distinct A₁ value
    qualify vacuously; an empty dividend yields an empty quotient —
    both short-circuit without running the array.
    """
    value_pos = a.schema.resolve(a_value)
    if a_group is None:
        if len(a.schema) != 2:
            raise SimulationError(
                "a_group may only be omitted for a binary dividend relation"
            )
        group_pos = 1 - value_pos
    else:
        group_pos = a.schema.resolve(a_group)
        if group_pos == value_pos:
            raise SimulationError("a_group and a_value must be different columns")
    divisor_pos = b.schema.resolve(b_value)
    if a.schema[value_pos].domain != b.schema[divisor_pos].domain:
        raise SimulationError(
            f"division columns are on different domains "
            f"({a.schema[value_pos].domain.name!r} vs "
            f"{b.schema[divisor_pos].domain.name!r})"
        )
    quotient_schema = a.schema.project([group_pos])

    pairs = [(row[group_pos], row[value_pos]) for row in a.tuples]
    distinct_x: list[int] = []
    seen: set[int] = set()
    for x, _ in pairs:
        if x not in seen:
            seen.add(x)
            distinct_x.append(x)
    divisor: list[int] = []
    seen_divisor: set[int] = set()
    for row in b.tuples:
        value = row[divisor_pos]
        if value not in seen_divisor:
            seen_divisor.add(value)
            divisor.append(value)

    empty_run = ArrayRun(pulses=0, rows=0, cols=0, cells=0)
    if not pairs:
        return DivisionResult(Relation(quotient_schema), [], [], empty_run)
    if not divisor:
        members = [(x,) for x in distinct_x]
        return DivisionResult(
            Relation(quotient_schema, members),
            distinct_x, [True] * len(distinct_x), empty_run,
        )

    plan = DivisionPlan(pairs, distinct_x, divisor, tagged=tagged)
    schedule = plan.schedule
    result = execute(plan, backend=backend, meter=meter, trace=trace)
    quotient_bits = _quotient_bits_columnar(result, schedule)
    if quotient_bits is None:
        quotient_bits = []
        for row in range(schedule.p_rows):
            collector = result.collector(f"and_row[{row}]")
            records = collector.records
            if len(records) != 1:
                raise SimulationError(
                    f"divisor row {row} produced {len(records)} quotient "
                    f"bits, expected exactly 1"
                )
            pulse, token = records[0]
            schedule.row_from_result(row, pulse)
            quotient_bits.append(bool(token.value))

    members = [(x,) for x, keep in zip(distinct_x, quotient_bits) if keep]
    run = ArrayRun(
        pulses=result.pulses,
        rows=schedule.p_rows,
        cols=2 + schedule.n_divisor,
        cells=result.cells,
        meter=meter, trace=trace, backend=result.engine,
    )
    return DivisionResult(Relation(quotient_schema, members), distinct_x,
                          quotient_bits, run)


def systolic_divide_general(
    a: Relation,
    b: Relation,
    a_group: Sequence[ColumnRef],
    a_value: Sequence[ColumnRef],
    b_value: Sequence[ColumnRef] | None = None,
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> DivisionResult:
    """§7's general case on the array, via composite-domain encoding.

    §2.3 makes every column combination itself a domain ("each member
    of the domain is uniquely and reversably encoded into an integer"),
    so multi-column groups and values reduce to the restricted
    binary ÷ unary shape: encode each combination to one code —
    consistently across dividend and divisor — run the Fig 7-2 array,
    and decode the quotient back to its columns.
    """
    if not a_group or not a_value:
        raise SimulationError(
            "division needs non-empty group and value column lists"
        )
    group_pos = a.schema.resolve_many(list(a_group))
    value_pos = a.schema.resolve_many(list(a_value))
    if set(group_pos) & set(value_pos):
        raise SimulationError("group and value column lists must be disjoint")
    if b_value is None:
        b_value = list(range(len(b.schema)))
    divisor_pos = b.schema.resolve_many(list(b_value))
    if len(divisor_pos) != len(value_pos):
        raise SimulationError(
            f"value/divisor column counts differ: {len(value_pos)} vs "
            f"{len(divisor_pos)}"
        )
    for pa, pb in zip(value_pos, divisor_pos):
        if a.schema[pa].domain != b.schema[pb].domain:
            raise SimulationError(
                f"division columns {pa}/{pb} are on different domains"
            )

    # Composite dictionaries (§2.3): combination tuple -> dense code.
    group_codes: dict[tuple[int, ...], int] = {}
    group_combos: list[tuple[int, ...]] = []
    value_codes: dict[tuple[int, ...], int] = {}

    def encode(codes: dict, combo: tuple[int, ...], keep: Optional[list] = None) -> int:
        code = codes.get(combo)
        if code is None:
            code = len(codes)
            codes[combo] = code
            if keep is not None:
                keep.append(combo)
        return code

    from repro.relational.domain import Domain
    from repro.relational.schema import Column, Schema

    pairs_schema = Schema.of(
        ("g", Domain("division-group-composite")),
        ("v", Domain("division-value-composite")),
    )
    encoded_pairs = []
    for row in a.tuples:
        g = encode(group_codes, tuple(row[p] for p in group_pos), group_combos)
        v = encode(value_codes, tuple(row[p] for p in value_pos))
        encoded_pairs.append((g, v))
    encoded_a = Relation(pairs_schema, encoded_pairs)

    divisor_schema = Schema.of(("v", Domain("division-value-composite")))
    encoded_b = Relation(
        divisor_schema,
        ((encode(value_codes, tuple(row[p] for p in divisor_pos)),)
         for row in b.tuples),
    )

    inner = systolic_divide(
        encoded_a, encoded_b, a_value=1, a_group=0, b_value=0,
        tagged=tagged, meter=meter, trace=trace, backend=backend,
    )
    quotient_schema = a.schema.project(list(a_group))
    members = (group_combos[code] for (code,) in inner.relation.tuples)
    return DivisionResult(
        relation=Relation(quotient_schema, members),
        distinct_x=inner.distinct_x,
        quotient_bits=inner.quotient_bits,
        run=inner.run,
    )
