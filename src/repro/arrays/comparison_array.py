"""The two-dimensional comparison array of Fig 3-3.

Vertically concatenated linear comparison arrays, pipelining all
``n_A × n_B`` tuple comparisons: relation A streams down, relation B
streams up, and the boolean matrix ``T`` of §3.3 emerges from the right
edge — entry ``t_ij`` from the meeting row of pair (i, j) on its
schedule-determined exit pulse.

This array is the paper's "main hardware" (§4.3): intersection,
difference, remove-duplicates, union, and projection all reuse it,
varying only the initial-``t`` injections and what happens to the
output.  This module runs the array bare and returns ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arrays.base import (
    ArrayRun,
    TInit,
    build_counter_stream_grid,
    cmp_name,
    execute,
)
from repro.arrays.schedule import CounterStreamSchedule
from repro.errors import SimulationError
from repro.systolic.engine import GridPlan
from repro.systolic.metrics import ActivityMeter
from repro.systolic.trace import TraceRecorder
from repro.systolic.wiring import Network

__all__ = ["ComparisonMatrixResult", "build_comparison_array", "compare_all_pairs"]


@dataclass
class ComparisonMatrixResult:
    """The matrix ``T`` of §3.3, plus operational detail."""

    t_matrix: list[list[bool]]
    schedule: CounterStreamSchedule
    run: ArrayRun

    def pairs_where_true(self) -> list[tuple[int, int]]:
        """All (i, j) with ``t_ij`` TRUE, row-major."""
        return [
            (i, j)
            for i, row in enumerate(self.t_matrix)
            for j, value in enumerate(row)
            if value
        ]


def build_comparison_array(
    a_tuples: Sequence[Sequence[int]],
    b_tuples: Sequence[Sequence[int]],
    t_init: TInit = lambda i, j: True,
    tagged: bool = False,
) -> tuple[Network, CounterStreamSchedule, dict[str, tuple[int, int]]]:
    """Assemble the bare Fig 3-3 array with right-edge taps per row."""
    if not a_tuples or not b_tuples:
        raise SimulationError("the comparison array needs non-empty relations")
    schedule = CounterStreamSchedule(
        n_a=len(a_tuples), n_b=len(b_tuples), arity=len(a_tuples[0])
    )
    network, layout = build_counter_stream_grid(
        a_tuples, b_tuples, schedule, t_init=t_init, tagged=tagged
    )
    for row in range(schedule.rows):
        network.tap(f"t_row[{row}]", cmp_name(row, schedule.arity - 1), "t_out")
    return network, schedule, layout


def compare_all_pairs(
    a_tuples: Sequence[Sequence[int]],
    b_tuples: Sequence[Sequence[int]],
    t_init: TInit = lambda i, j: True,
    tagged: bool = False,
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
    backend=None,
) -> ComparisonMatrixResult:
    """Run the 2-D array and collect the full boolean matrix ``T``.

    Collection uses the hardware discipline: each right-edge arrival is
    decoded to its (i, j) purely from (row, pulse) via the schedule.
    """
    if not a_tuples or not b_tuples:
        raise SimulationError("the comparison array needs non-empty relations")
    schedule = CounterStreamSchedule(
        n_a=len(a_tuples), n_b=len(b_tuples), arity=len(a_tuples[0])
    )
    plan = GridPlan(
        a_tuples, b_tuples, schedule, t_init=t_init, row_taps=True,
        tagged=tagged, name="comparison-array",
    )
    result = execute(plan, backend=backend, meter=meter, trace=trace)

    t_matrix = [[False] * schedule.n_b for _ in range(schedule.n_a)]
    seen: set[tuple[int, int]] = set()
    for row in range(schedule.rows):
        for pulse, token in result.collector(f"t_row[{row}]"):
            i, j = schedule.pair_from_exit(row, pulse)
            if (i, j) in seen:
                raise SimulationError(f"pair ({i}, {j}) exited twice")
            seen.add((i, j))
            if tagged and token.tag is not None and token.tag != ("t", i, j):
                raise SimulationError(
                    f"arrival decoded as pair ({i}, {j}) but carries tag "
                    f"{token.tag!r}"
                )
            t_matrix[i][j] = bool(token.value)
    expected = schedule.n_a * schedule.n_b
    if len(seen) != expected:
        raise SimulationError(
            f"only {len(seen)} of {expected} pair results exited the array"
        )
    return ComparisonMatrixResult(
        t_matrix=t_matrix,
        schedule=schedule,
        run=ArrayRun(
            pulses=result.pulses, rows=schedule.rows, cols=schedule.arity,
            cells=result.cells, meter=meter, trace=trace,
            backend=result.engine,
        ),
    )
