"""Problem decomposition for fixed-size arrays (§8).

"It is also possible to use the array to solve problems that will not
fit entirely on it.  This calls for the technique of decomposing
problems ... in the intersection problem, consider the matrix, T, of
results.  For a large problem, one can simply partition this matrix
into sub-problems small enough to fit on the array; each of these
sub-problems would generate a piece of the matrix."

:class:`ArrayCapacity` describes the physical device (processor rows ×
columns).  The blocked operators below partition both the tuple
dimension (the T matrix, as quoted) and, when tuples are wider than the
device, the element dimension — ANDing partial comparison results
across column blocks.  Partial results between block runs are "stored
outside the systolic arrays before they are finally combined" (§9); the
combination (ORing T-rows, unioning match sets) is that outside step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.arrays.comparison_array import compare_all_pairs
from repro.arrays.join import _collect_matches
from repro.arrays.base import execute
from repro.arrays.schedule import CounterStreamSchedule
from repro.errors import CapacityError, SimulationError
from repro.relational.algebra import equi_join_layout, theta_join_layout
from repro.relational.relation import MultiRelation, Relation
from repro.relational.schema import ColumnRef
from repro.systolic.engine import DivisionPlan, GridPlan

__all__ = [
    "ArrayCapacity",
    "BlockedReport",
    "blocked_pair_matrix",
    "blocked_intersection",
    "blocked_difference",
    "blocked_remove_duplicates",
    "blocked_union",
    "blocked_join",
    "blocked_divide",
]


@dataclass(frozen=True)
class ArrayCapacity:
    """The physical size of a systolic device: processor rows × columns."""

    max_rows: int
    max_cols: int

    def __post_init__(self) -> None:
        if self.max_rows < 1 or self.max_cols < 1:
            raise CapacityError(
                f"capacity must be positive, got {self.max_rows}×{self.max_cols}"
            )

    @property
    def tuple_block(self) -> int:
        """Max tuples per counter-streaming block: rows = 2·block − 1."""
        return (self.max_rows + 1) // 2


@dataclass
class BlockedReport:
    """Accounting for a blocked execution."""

    block_runs: int = 0
    total_pulses: int = 0
    a_blocks: int = 0
    b_blocks: int = 0
    column_blocks: int = 0

    def add_run(self, pulses: int) -> None:
        """Record one sub-problem executed on the device."""
        self.block_runs += 1
        self.total_pulses += pulses


def _block_ranges(n: int, size: int) -> list[range]:
    return [range(lo, min(lo + size, n)) for lo in range(0, n, size)]


def blocked_pair_matrix(
    a_tuples: Sequence[Sequence[int]],
    b_tuples: Sequence[Sequence[int]],
    capacity: ArrayCapacity,
    t_init: Callable[[int, int], bool] = lambda i, j: True,
    backend=None,
) -> tuple[list[list[bool]], BlockedReport]:
    """The full T matrix, computed block by block on a bounded device.

    Tuple blocks bound the rows; when tuple arity exceeds the device
    width, element columns are blocked too and partial equality results
    are ANDed outside the array.  The ``t_init`` mask (global indices)
    is applied on the first column block only — ANDing propagates it.
    """
    n_a, n_b = len(a_tuples), len(b_tuples)
    arity = len(a_tuples[0]) if a_tuples else 0
    report = BlockedReport()
    if not n_a or not n_b:
        return [[False] * n_b for _ in range(n_a)], report

    size = capacity.tuple_block
    col_ranges = _block_ranges(arity, capacity.max_cols)
    a_ranges = _block_ranges(n_a, size)
    b_ranges = _block_ranges(n_b, size)
    report.a_blocks = len(a_ranges)
    report.b_blocks = len(b_ranges)
    report.column_blocks = len(col_ranges)

    matrix = [[False] * n_b for _ in range(n_a)]
    for a_range in a_ranges:
        for b_range in b_ranges:
            block: Optional[list[list[bool]]] = None
            for block_index, col_range in enumerate(col_ranges):
                sub_a = [
                    tuple(a_tuples[i][k] for k in col_range) for i in a_range
                ]
                sub_b = [
                    tuple(b_tuples[j][k] for k in col_range) for j in b_range
                ]
                if block_index == 0:
                    def init(bi: int, bj: int) -> bool:
                        return t_init(a_range[bi], b_range[bj])
                else:
                    def init(bi: int, bj: int) -> bool:
                        return True
                result = compare_all_pairs(
                    sub_a, sub_b, t_init=init, backend=backend
                )
                report.add_run(result.run.pulses)
                if block is None:
                    block = result.t_matrix
                else:
                    block = [
                        [x and y for x, y in zip(row_x, row_y)]
                        for row_x, row_y in zip(block, result.t_matrix)
                    ]
            assert block is not None
            for bi, i in enumerate(a_range):
                for bj, j in enumerate(b_range):
                    matrix[i][j] = block[bi][bj]
    return matrix, report


def _membership_from_matrix(matrix: list[list[bool]]) -> list[bool]:
    return [any(row) for row in matrix]


def blocked_intersection(
    a: Relation, b: Relation, capacity: ArrayCapacity, backend=None
) -> tuple[Relation, BlockedReport]:
    """``A ∩ B`` on a device too small for the whole problem."""
    a.schema.require_union_compatible(b.schema)
    if not a or not b:
        return Relation(a.schema), BlockedReport()
    matrix, report = blocked_pair_matrix(
        a.tuples, b.tuples, capacity, backend=backend
    )
    t_vector = _membership_from_matrix(matrix)
    members = (row for row, keep in zip(a.tuples, t_vector) if keep)
    return Relation(a.schema, members), report


def blocked_difference(
    a: Relation, b: Relation, capacity: ArrayCapacity, backend=None
) -> tuple[Relation, BlockedReport]:
    """``A − B`` blocked: keep the FALSE rows of T (§4.3)."""
    a.schema.require_union_compatible(b.schema)
    if not a:
        return Relation(a.schema), BlockedReport()
    if not b:
        return Relation(a.schema, a.tuples), BlockedReport()
    matrix, report = blocked_pair_matrix(
        a.tuples, b.tuples, capacity, backend=backend
    )
    t_vector = _membership_from_matrix(matrix)
    members = (row for row, member in zip(a.tuples, t_vector) if not member)
    return Relation(a.schema, members), report


def blocked_remove_duplicates(
    a: MultiRelation, capacity: ArrayCapacity, backend=None
) -> tuple[Relation, BlockedReport]:
    """Remove-duplicates blocked: triangular mask via global t_init (§5)."""
    if not a:
        return Relation(a.schema), BlockedReport()
    matrix, report = blocked_pair_matrix(
        a.tuples, a.tuples, capacity, t_init=lambda i, j: j < i,
        backend=backend,
    )
    drop = _membership_from_matrix(matrix)
    kept = (row for row, dropped in zip(a.tuples, drop) if not dropped)
    return Relation(a.schema, kept), report


def blocked_union(
    a: Relation, b: Relation, capacity: ArrayCapacity, backend=None
) -> tuple[Relation, BlockedReport]:
    """``A ∪ B`` = blocked remove-duplicates of the concatenation (§5)."""
    a.schema.require_union_compatible(b.schema)
    return blocked_remove_duplicates(
        a.to_multi().concat(b), capacity, backend=backend
    )


def blocked_join(
    a: Relation,
    b: Relation,
    on: Sequence[tuple[ColumnRef, ColumnRef]],
    capacity: ArrayCapacity,
    ops: Optional[Sequence[str]] = None,
    backend=None,
) -> tuple[Relation, BlockedReport]:
    """(θ-)join blocked over tuple blocks and join-column blocks.

    A pair matches overall iff it matches in every column block, so the
    per-block match sets are intersected outside the array.
    """
    if ops is None:
        a_pos, b_pos, schema, b_keep = equi_join_layout(a, b, on)
        ops = ["=="] * len(on)
    else:
        a_pos, b_pos, schema, b_keep = theta_join_layout(a, b, on, ops)
    report = BlockedReport()
    if not a or not b:
        return Relation(schema), report

    a_columns = [tuple(row[p] for p in a_pos) for row in a.tuples]
    b_columns = [tuple(row[p] for p in b_pos) for row in b.tuples]
    size = capacity.tuple_block
    col_ranges = _block_ranges(len(on), capacity.max_cols)
    a_ranges = _block_ranges(len(a_columns), size)
    b_ranges = _block_ranges(len(b_columns), size)
    report.a_blocks = len(a_ranges)
    report.b_blocks = len(b_ranges)
    report.column_blocks = len(col_ranges)

    all_matches: list[tuple[int, int]] = []
    for a_range in a_ranges:
        for b_range in b_ranges:
            block_matches: Optional[set[tuple[int, int]]] = None
            for col_range in col_ranges:
                sub_a = [
                    tuple(a_columns[i][k] for k in col_range) for i in a_range
                ]
                sub_b = [
                    tuple(b_columns[j][k] for k in col_range) for j in b_range
                ]
                sub_ops = [ops[k] for k in col_range]
                schedule = CounterStreamSchedule(
                    n_a=len(sub_a), n_b=len(sub_b), arity=len(sub_ops)
                )
                plan = GridPlan(
                    sub_a, sub_b, schedule, ops=tuple(sub_ops),
                    row_taps=True, name="join-array",
                )
                result = execute(plan, backend=backend)
                report.add_run(result.pulses)
                found = {
                    (a_range[bi], b_range[bj])
                    for bi, bj in _collect_matches(result, schedule, False)
                }
                block_matches = (
                    found if block_matches is None else block_matches & found
                )
            assert block_matches is not None
            all_matches.extend(sorted(block_matches))

    all_matches.sort()
    rows = [
        a.tuples[i] + tuple(b.tuples[j][p] for p in b_keep)
        for i, j in all_matches
    ]
    return Relation(schema, rows), report


def blocked_divide(
    a: Relation,
    b: Relation,
    capacity: ArrayCapacity,
    a_value: ColumnRef = 1,
    a_group: ColumnRef | None = None,
    b_value: ColumnRef = 0,
    backend=None,
) -> tuple[Relation, BlockedReport]:
    """``A ÷ B`` on a bounded device (§7 array + §8 decomposition).

    The dividend array's row count equals the number of *distinct* A₁
    values, so those are blocked to the device height.  A divisor wider
    than the device is blocked along the divisor row: ``x`` covers all
    of B iff it covers every divisor block, so per-block quotient bits
    are ANDed outside the array.  Every block streams the full pair
    list (the dividend is not partitionable — any pair may feed any
    row).
    """
    value_pos = a.schema.resolve(a_value)
    if a_group is None:
        if len(a.schema) != 2:
            raise SimulationError(
                "a_group may only be omitted for a binary dividend relation"
            )
        group_pos = 1 - value_pos
    else:
        group_pos = a.schema.resolve(a_group)
        if group_pos == value_pos:
            raise SimulationError("a_group and a_value must be different columns")
    divisor_pos = b.schema.resolve(b_value)
    if a.schema[value_pos].domain != b.schema[divisor_pos].domain:
        raise SimulationError("division columns are on different domains")
    quotient_schema = a.schema.project([group_pos])
    report = BlockedReport()

    pairs = [(row[group_pos], row[value_pos]) for row in a.tuples]
    distinct_x: list[int] = []
    seen: set[int] = set()
    for x, _ in pairs:
        if x not in seen:
            seen.add(x)
            distinct_x.append(x)
    divisor: list[int] = []
    seen_divisor: set[int] = set()
    for row in b.tuples:
        value = row[divisor_pos]
        if value not in seen_divisor:
            seen_divisor.add(value)
            divisor.append(value)

    if not pairs:
        return Relation(quotient_schema), report
    if not divisor:
        return Relation(quotient_schema, ((x,) for x in distinct_x)), report

    # The divisor rows sit beside the two dividend columns.
    divisor_cols = capacity.max_cols - 2
    if divisor_cols < 1:
        raise CapacityError(
            f"the division array needs at least 3 processor columns, "
            f"device has {capacity.max_cols}"
        )
    x_ranges = _block_ranges(len(distinct_x), capacity.max_rows)
    divisor_ranges = _block_ranges(len(divisor), divisor_cols)
    report.a_blocks = len(x_ranges)
    report.b_blocks = len(divisor_ranges)

    quotient_bits = [True] * len(distinct_x)
    for x_range in x_ranges:
        sub_x = [distinct_x[r] for r in x_range]
        for divisor_range in divisor_ranges:
            sub_divisor = [divisor[s] for s in divisor_range]
            plan = DivisionPlan(pairs, sub_x, sub_divisor)
            result = execute(plan, backend=backend)
            report.add_run(result.pulses)
            for local_row, global_row in enumerate(x_range):
                records = result.collector(f"and_row[{local_row}]").records
                if len(records) != 1:
                    raise SimulationError(
                        f"divisor row {local_row} produced {len(records)} "
                        f"quotient bits, expected exactly 1"
                    )
                _, token = records[0]
                quotient_bits[global_row] &= bool(token.value)

    members = ((x,) for x, keep in zip(distinct_x, quotient_bits) if keep)
    return Relation(quotient_schema, members), report
