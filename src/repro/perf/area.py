"""Area accounting: from array geometry to chips (§8).

§8's chip arithmetic is bottom-up: bit-comparators per chip, chips per
system.  Going the other way, a word-level array of ``rows × cols``
processors comparing ``element_bits``-bit elements occupies
``rows · cols · element_bits`` bit-comparators (the word→bit partition
of §8 / ref [3]); dividing by comparators-per-chip sizes the device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError
from repro.perf.technology import TechnologyModel

__all__ = ["ArrayAreaEstimate", "estimate_array_area"]


@dataclass(frozen=True)
class ArrayAreaEstimate:
    """Physical footprint of one operator array."""

    rows: int
    cols: int
    element_bits: int
    bit_comparators: int
    chips: int
    silicon_mm2: float

    def __repr__(self) -> str:
        return (
            f"ArrayAreaEstimate({self.rows}×{self.cols} words @ "
            f"{self.element_bits}b = {self.bit_comparators} comparators, "
            f"{self.chips} chips, {self.silicon_mm2:.1f} mm²)"
        )


def estimate_array_area(
    rows: int,
    cols: int,
    technology: TechnologyModel,
    element_bits: int = 32,
) -> ArrayAreaEstimate:
    """Size a ``rows × cols`` word-level array on the §8 technology."""
    if rows < 1 or cols < 1 or element_bits < 1:
        raise ReproError(
            f"array geometry must be positive: rows={rows}, cols={cols}, "
            f"element_bits={element_bits}"
        )
    bit_comparators = rows * cols * element_bits
    chips = math.ceil(bit_comparators / technology.comparators_per_chip)
    silicon_mm2 = bit_comparators * technology.bit_comparator_area_um2 / 1e6
    return ArrayAreaEstimate(
        rows=rows,
        cols=cols,
        element_bits=element_bits,
        bit_comparators=bit_comparators,
        chips=chips,
        silicon_mm2=silicon_mm2,
    )
