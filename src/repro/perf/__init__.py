"""The §8 technology and performance model.

Turns pulse counts and comparison counts into the paper's nanosecond /
chip-count arithmetic: the NMOS parameters, area model, intersection
timing predictions (the ~50 ms / ~10 ms figures), and the disk-rate
comparison.
"""

from repro.perf.area import ArrayAreaEstimate, estimate_array_area
from repro.perf.floorplan import (
    ArrayFloorplan,
    ChipPackage,
    plan_array,
    plan_system,
)
from repro.perf.cost import (
    OpCost,
    block_spans,
    comparison_cost,
    division_cost,
    join_cost,
)
from repro.perf.disk import (
    DiskModel,
    PAPER_DISK,
    intersect_vs_read_report,
    largest_intersectable_relation_bytes,
)
from repro.perf.predictions import (
    PAPER_WORKLOAD,
    RelationProfile,
    intersection_bit_comparisons,
    intersection_time_seconds,
    paper_aggressive_prediction,
    paper_conservative_prediction,
)
from repro.perf.technology import (
    PAPER_AGGRESSIVE,
    PAPER_CONSERVATIVE,
    TechnologyModel,
)

__all__ = [
    "ArrayAreaEstimate",
    "ArrayFloorplan",
    "ChipPackage",
    "DiskModel",
    "OpCost",
    "PAPER_AGGRESSIVE",
    "PAPER_CONSERVATIVE",
    "PAPER_DISK",
    "PAPER_WORKLOAD",
    "RelationProfile",
    "TechnologyModel",
    "block_spans",
    "comparison_cost",
    "division_cost",
    "estimate_array_area",
    "join_cost",
    "intersect_vs_read_report",
    "intersection_bit_comparisons",
    "intersection_time_seconds",
    "largest_intersectable_relation_bytes",
    "paper_aggressive_prediction",
    "paper_conservative_prediction",
    "plan_array",
    "plan_system",
]
