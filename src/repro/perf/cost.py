"""Operator cost model for the physical planner.

The §9 machine has to *choose* — which device runs an operation, and
whether chained operations stream into each other — and both choices
need predicted times.  This module turns relation sizes into pulse
counts using exactly the schedule arithmetic the simulated hardware
executes (§3's :class:`~repro.systolic.engine.schedule.CounterStreamSchedule`,
§7's :class:`~repro.systolic.engine.schedule.DivisionSchedule`) and the
§8 block decomposition (:mod:`repro.arrays.decomposition`), so a
prediction over *actual* input sizes equals the executed pulse count
bit for bit.  A :class:`~repro.perf.technology.TechnologyModel`
converts pulses to seconds, as everywhere else in :mod:`repro.perf`.

Each cost splits into **fill** (pulses before the first result emerges
— the array's latency, ≈ its row count) and **stream** (the remaining
pulses while the relation flows through).  The split is what the
pipeline law of :mod:`repro.machine.pipelining` consumes: a chain of
fused stages finishes in Σ fill + max stream instead of Σ (fill +
stream).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import ReproError
from repro.perf.technology import TechnologyModel
from repro.systolic.engine.schedule import (
    CounterStreamSchedule,
    DivisionSchedule,
)

__all__ = [
    "OpCost",
    "ExchangeCost",
    "ScanCost",
    "SHARD_LINK_BYTES_PER_SECOND",
    "block_spans",
    "comparison_cost",
    "join_cost",
    "division_cost",
    "bit_comparison_cost",
    "bit_join_cost",
    "broadcast_cost",
    "shuffle_cost",
]


@dataclass(frozen=True)
class OpCost:
    """Predicted cost of one operation on one fixed-size device."""

    fill_pulses: int
    stream_pulses: int
    a_blocks: int = 1
    b_blocks: int = 1
    column_blocks: int = 1

    def __post_init__(self) -> None:
        if self.fill_pulses < 0 or self.stream_pulses < 0:
            raise ReproError(f"pulse counts must be non-negative: {self}")

    @property
    def total_pulses(self) -> int:
        """Stand-alone pulse count: fill + stream."""
        return self.fill_pulses + self.stream_pulses

    @property
    def block_runs(self) -> int:
        """§8 sub-problems executed on the device."""
        if self.total_pulses == 0:
            return 0
        return self.a_blocks * self.b_blocks * self.column_blocks

    def seconds(self, technology: TechnologyModel) -> float:
        """Stand-alone completion time under a technology model."""
        return technology.pulses_to_seconds(self.total_pulses)

    def fill_seconds(self, technology: TechnologyModel) -> float:
        """Latency to the first emerging result."""
        return technology.pulses_to_seconds(self.fill_pulses)


def block_spans(n: int, size: int) -> list[int]:
    """Block lengths of §8's decomposition of ``n`` items into ``size``-blocks."""
    if n < 0 or size < 1:
        raise ReproError(f"invalid block decomposition: n={n}, size={size}")
    return [min(size, n - lo) for lo in range(0, n, size)]


_ZERO = OpCost(fill_pulses=0, stream_pulses=0, a_blocks=0, b_blocks=0,
               column_blocks=0)


def comparison_cost(
    n_a: int, n_b: int, arity: int, max_rows: int, max_cols: int
) -> OpCost:
    """Cost of an intersection-array run (∩, −, dedup, ∪, projection).

    Mirrors :func:`repro.arrays.decomposition.blocked_pair_matrix`: the
    tuple dimension is blocked to the counter-streaming capacity
    ``(max_rows + 1) // 2`` per side, the element dimension to the
    device width, and each sub-problem costs its schedule's
    ``comparison_pulses``.
    """
    if n_a == 0 or n_b == 0:
        return _ZERO
    size = (max_rows + 1) // 2
    a_spans = block_spans(n_a, size)
    b_spans = block_spans(n_b, size)
    col_spans = block_spans(arity, max_cols)
    # Every span value is the full block size except possibly the last,
    # so each dimension has at most two distinct values: summing per
    # distinct (sa, sb, sc) triple with multiplicities is exact (integer
    # pulse counts) and keeps million-row costing out of the
    # blocks² loop.
    total = sum(
        CounterStreamSchedule(sa, sb, sc).comparison_pulses * ca * cb * cc
        for sa, ca in Counter(a_spans).items()
        for sb, cb in Counter(b_spans).items()
        for sc, cc in Counter(col_spans).items()
    )
    fill = CounterStreamSchedule(a_spans[0], b_spans[0], col_spans[0]).rows
    return OpCost(
        fill_pulses=min(fill, total), stream_pulses=max(0, total - fill),
        a_blocks=len(a_spans), b_blocks=len(b_spans),
        column_blocks=len(col_spans),
    )


def join_cost(
    n_a: int, n_b: int, n_on: int, max_rows: int, max_cols: int
) -> OpCost:
    """Cost of a (θ-)join-array run over ``n_on`` column pairs.

    Mirrors :func:`repro.arrays.decomposition.blocked_join`: identical
    decomposition, but only the join columns stream through the array.
    """
    if n_a == 0 or n_b == 0:
        return _ZERO
    return comparison_cost(n_a, n_b, n_on, max_rows, max_cols)


def division_cost(
    n_pairs: int, n_distinct: int, n_divisor: int, max_rows: int, max_cols: int
) -> OpCost:
    """Cost of a §7 division-array run.

    Mirrors :func:`repro.arrays.decomposition.blocked_divide`: distinct
    dividend groups are blocked to the device height, the divisor row
    to the device width minus the two dividend columns, and every block
    streams the full pair list.
    """
    if n_pairs == 0 or n_divisor == 0:
        return _ZERO
    divisor_cols = max_cols - 2
    if divisor_cols < 1:
        raise ReproError(
            f"the division array needs at least 3 processor columns, "
            f"device has {max_cols}"
        )
    x_spans = block_spans(n_distinct, max_rows)
    divisor_spans = block_spans(n_divisor, divisor_cols)
    # Same distinct-span aggregation as comparison_cost: exact, and
    # independent of the block-pair count.
    total = sum(
        DivisionSchedule(n_pairs, sx, sd).total_pulses * cx * cd
        for sx, cx in Counter(x_spans).items()
        for sd, cd in Counter(divisor_spans).items()
    )
    # First quotient bit: the bottom row's result of the first block.
    first = DivisionSchedule(n_pairs, x_spans[0], divisor_spans[0])
    fill = first.result_pulse(x_spans[0] - 1)
    return OpCost(
        fill_pulses=min(fill, total), stream_pulses=max(0, total - fill),
        a_blocks=len(x_spans), b_blocks=len(divisor_spans), column_blocks=1,
    )


def bit_comparison_cost(
    n_a: int,
    n_b: int,
    arity: int,
    element_bits: int,
    max_rows: int,
    max_cols: int,
) -> OpCost:
    """Cost of a comparison-array run on a §8 **bit-level** device.

    The word→bit transformation replaces every word column by
    ``element_bits`` bit columns, so the same run streams
    ``arity × element_bits`` columns through a device whose
    ``max_cols`` counts *bit comparators* — §8's area unit.  Identical
    schedule arithmetic otherwise, which keeps the prediction
    pulse-exact against a bit-level device's blocked execution (the
    expanded tuples run through the same
    :func:`repro.arrays.decomposition.blocked_pair_matrix`).
    """
    if element_bits < 1:
        raise ReproError(
            f"element_bits must be >= 1, got {element_bits}"
        )
    return comparison_cost(
        n_a, n_b, arity * element_bits, max_rows, max_cols
    )


def bit_join_cost(
    n_a: int,
    n_b: int,
    n_on: int,
    element_bits: int,
    max_rows: int,
    max_cols: int,
) -> OpCost:
    """Cost of an equality join on a bit-level device.

    Only the ``n_on`` join columns stream through the array, each
    expanded to ``element_bits`` bit columns.  (θ-joins with magnitude
    operators keep word devices — the bit-level device kind is
    equality-only.)
    """
    if element_bits < 1:
        raise ReproError(
            f"element_bits must be >= 1, got {element_bits}"
        )
    return join_cost(n_a, n_b, n_on * element_bits, max_rows, max_cols)


#: Sustained rate of one cross-shard link.  A shard interconnect of the
#: paper's era moves data at about the §8 disk's streaming rate — one
#: 500 KB cylinder per 17 ms revolution — so exchanges are costed
#: against the same channel the storage hierarchy already models.
SHARD_LINK_BYTES_PER_SECOND: float = 500_000 / (60.0 / 3600.0)


@dataclass(frozen=True)
class ExchangeCost:
    """Predicted cost of one cross-shard data movement.

    ``tuples`` counts tuples that cross a link, ``nbytes`` the bytes
    they occupy on the wire, and ``seconds`` the completion time with
    every shard's link running in parallel — the shard-level analogue
    of :class:`OpCost` for the planner's placement choice.
    """

    tuples: int
    nbytes: int
    seconds: float

    def __post_init__(self) -> None:
        if self.tuples < 0 or self.nbytes < 0 or self.seconds < 0:
            raise ReproError(f"exchange cost must be non-negative: {self}")


_NO_EXCHANGE = ExchangeCost(tuples=0, nbytes=0, seconds=0.0)


@dataclass(frozen=True)
class ScanCost:
    """Predicted cost of one store-backed base-relation scan.

    The storage-layer analogue of :class:`OpCost`: ``chunks_total`` is
    the relation's §8 block count on the persistent store,
    ``chunks_read`` how many survive index/zone-map pruning for the
    scan's predicate, ``rows_scanned``/``nbytes`` the tuples and bytes
    those surviving chunks stream under the machine's disk model.  The
    physical planner attaches one to each pruned load op so
    ``explain()`` can show ``chunks k/N pruned`` next to the predicted
    read time.
    """

    chunks_total: int
    chunks_read: int
    rows_scanned: int
    nbytes: int

    def __post_init__(self) -> None:
        if not (0 <= self.chunks_read <= self.chunks_total):
            raise ReproError(f"inconsistent scan chunk counts: {self}")
        if self.rows_scanned < 0 or self.nbytes < 0:
            raise ReproError(f"scan cost must be non-negative: {self}")

    @property
    def chunks_pruned(self) -> int:
        """Chunks the grid index / zone maps skipped entirely."""
        return self.chunks_total - self.chunks_read


def _element_bytes(element_bits: int) -> int:
    if element_bits < 1:
        raise ReproError(f"element_bits must be >= 1, got {element_bits}")
    return (element_bits + 7) // 8


def broadcast_cost(
    n_tuples: int,
    arity: int,
    element_bits: int,
    shards: int,
    bytes_per_second: float = SHARD_LINK_BYTES_PER_SECOND,
) -> ExchangeCost:
    """Cost of replicating a relation onto every shard.

    With the relation spread roughly evenly, each shard already holds
    ``1/shards`` of it and must receive the rest; every shard's link
    receives concurrently, so the completion time is one shard's
    missing bytes over one link — ``shards``× the per-link bill of
    :func:`shuffle_cost` for the same relation.
    """
    if shards < 1:
        raise ReproError(f"shard count must be >= 1, got {shards}")
    if shards == 1 or n_tuples == 0:
        return _NO_EXCHANGE
    tuple_bytes = arity * _element_bytes(element_bits)
    moved = n_tuples * (shards - 1)
    received = n_tuples * tuple_bytes * (shards - 1) // shards
    return ExchangeCost(
        tuples=moved,
        nbytes=moved * tuple_bytes,
        seconds=received / bytes_per_second,
    )


def shuffle_cost(
    n_tuples: int,
    arity: int,
    element_bits: int,
    shards: int,
    bytes_per_second: float = SHARD_LINK_BYTES_PER_SECOND,
) -> ExchangeCost:
    """Cost of re-partitioning a relation by a new key.

    A deterministic hash sends each tuple to an effectively uniform
    shard, so ``(shards - 1) / shards`` of the relation changes shard;
    the moved bytes spread over all ``shards`` parallel links.
    """
    if shards < 1:
        raise ReproError(f"shard count must be >= 1, got {shards}")
    if shards == 1 or n_tuples == 0:
        return _NO_EXCHANGE
    tuple_bytes = arity * _element_bytes(element_bits)
    moved = n_tuples * (shards - 1) // shards
    nbytes = moved * tuple_bytes
    return ExchangeCost(
        tuples=moved,
        nbytes=nbytes,
        seconds=nbytes / (bytes_per_second * shards),
    )
