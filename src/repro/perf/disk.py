"""The moving-head-disk model of §8 and the array-vs-disk comparison.

§8 closes with a bandwidth argument: "a moving-head disk rotates at
about 3600 r.p.m., or about once every 17ms.  Assume that we can read
an entire cylinder in one revolution ... a rate of about 500,000 bytes
in 17ms.  In a comparable period of time, our systolic array can
process (for example, can intersect) two relations, each of about
2 million bytes."  Experiment E9 reproduces the full comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError
from repro.perf.predictions import RelationProfile, intersection_time_seconds
from repro.perf.technology import TechnologyModel

__all__ = ["DiskModel", "PAPER_DISK", "largest_intersectable_relation_bytes"]


@dataclass(frozen=True)
class DiskModel:
    """A §8-style disk: rotation speed and per-cylinder capacity."""

    rpm: float = 3600.0
    cylinder_bytes: int = 500_000

    def __post_init__(self) -> None:
        if self.rpm <= 0 or self.cylinder_bytes < 1:
            raise ReproError(f"invalid disk parameters: {self}")

    @property
    def revolution_seconds(self) -> float:
        """One revolution: 60/3600 s ≈ 16.7 ms (the paper rounds to 17)."""
        return 60.0 / self.rpm

    @property
    def bytes_per_second(self) -> float:
        """Sustained cylinder-read rate."""
        return self.cylinder_bytes / self.revolution_seconds

    def read_seconds(self, nbytes: float) -> float:
        """Time to stream ``nbytes`` at whole-revolution granularity."""
        if nbytes < 0:
            raise ReproError(f"negative read size: {nbytes}")
        revolutions = math.ceil(nbytes / self.cylinder_bytes)
        return revolutions * self.revolution_seconds


#: The disk §8 describes.
PAPER_DISK = DiskModel()


def largest_intersectable_relation_bytes(
    technology: TechnologyModel,
    window_seconds: float,
    tuple_bits: int = 1500,
) -> float:
    """Largest per-relation size (bytes) intersectable within a window.

    Intersecting two n-tuple relations needs ``tuple_bits · n²`` bit
    comparisons; solving ``time(n) = window`` for ``n`` and converting
    to bytes gives the paper's "about 2 million bytes" claim when the
    window is a handful of disk revolutions.
    """
    if window_seconds <= 0:
        raise ReproError(f"window must be positive, got {window_seconds}")
    budget = technology.comparisons_per_second * window_seconds
    n = math.floor(math.sqrt(budget / tuple_bits))
    return RelationProfile(tuple_bits=tuple_bits, cardinality=n).total_bytes


def intersect_vs_read_report(
    technology: TechnologyModel,
    disk: DiskModel = PAPER_DISK,
    relation_bytes: float = 2_000_000,
    tuple_bits: int = 1500,
) -> dict[str, float]:
    """The E9 comparison: read time vs intersect time for one relation size.

    Returns a dict with the disk revolution time, the time to read one
    relation of ``relation_bytes``, and the time to intersect two such
    relations on the array.
    """
    cardinality = int(relation_bytes / (tuple_bits / 8))
    profile = RelationProfile(tuple_bits=tuple_bits, cardinality=cardinality)
    return {
        "revolution_seconds": disk.revolution_seconds,
        "read_seconds": disk.read_seconds(relation_bytes),
        "intersect_seconds": intersection_time_seconds(technology, profile),
        "relation_bytes": float(relation_bytes),
        "cardinality": float(cardinality),
    }
