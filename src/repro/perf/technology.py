"""The NMOS technology model of §8.

§8 grounds the paper's performance claims in four "(conservative)
estimates ... typical of results that have been achieved with present
NMOS technology":

* a bit-comparator of about 240µ × 150µ, performing a comparison in
  about 350 ns including on-/off-chip transfer;
* chips of about 6000µ × 6000µ — "division gives us about 1000
  bit-comparators per chip";
* off-chip transfer under 30 ns, so ~10 bits can be multiplexed on a
  pin during one comparison;
* systems of about 1000 chips, giving 10⁶ comparisons in parallel.

:class:`TechnologyModel` encodes those numbers (all overridable) and
derives the quantities §8 computes from them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ReproError

__all__ = ["TechnologyModel", "PAPER_CONSERVATIVE", "PAPER_AGGRESSIVE"]


@dataclass(frozen=True)
class TechnologyModel:
    """§8's device parameters and the arithmetic built on them."""

    bit_comparator_width_um: float = 240.0
    bit_comparator_height_um: float = 150.0
    chip_width_um: float = 6000.0
    chip_height_um: float = 6000.0
    comparison_time_ns: float = 350.0
    offchip_transfer_ns: float = 30.0
    chips: int = 1000

    def __post_init__(self) -> None:
        numeric = (
            self.bit_comparator_width_um, self.bit_comparator_height_um,
            self.chip_width_um, self.chip_height_um,
            self.comparison_time_ns, self.offchip_transfer_ns,
        )
        if any(value <= 0 for value in numeric) or self.chips < 1:
            raise ReproError(f"technology parameters must be positive: {self}")

    # -- area --------------------------------------------------------------

    @property
    def bit_comparator_area_um2(self) -> float:
        """Area of one bit-comparator (240µ × 150µ = 36 000 µm²)."""
        return self.bit_comparator_width_um * self.bit_comparator_height_um

    @property
    def chip_area_um2(self) -> float:
        """Area of one chip (6000µ × 6000µ = 3.6 × 10⁷ µm²)."""
        return self.chip_width_um * self.chip_height_um

    @property
    def comparators_per_chip(self) -> int:
        """"Division gives us about 1000 bit-comparators per chip.""" ""
        return int(self.chip_area_um2 // self.bit_comparator_area_um2)

    @property
    def parallel_comparisons(self) -> int:
        """Bit comparisons performed in parallel across the system."""
        return self.comparators_per_chip * self.chips

    # -- timing --------------------------------------------------------------

    @property
    def bits_per_pin_multiplex(self) -> int:
        """Bits multiplexable on one pin per comparison window (~10)."""
        return int(self.comparison_time_ns // self.offchip_transfer_ns)

    @property
    def comparisons_per_second(self) -> float:
        """System-wide bit-comparison throughput."""
        return self.parallel_comparisons / (self.comparison_time_ns * 1e-9)

    def time_for_bit_comparisons(self, bit_comparisons: float) -> float:
        """Seconds to perform ``bit_comparisons`` at full parallelism."""
        if bit_comparisons < 0:
            raise ReproError(f"negative work: {bit_comparisons}")
        return bit_comparisons / self.comparisons_per_second

    def pulses_to_seconds(self, pulses: int) -> float:
        """Wall-clock time of a simulated run: one pulse per comparison window."""
        return pulses * self.comparison_time_ns * 1e-9

    def scaled(self, **overrides: float) -> "TechnologyModel":
        """A copy with some parameters replaced (e.g. faster comparators)."""
        return replace(self, **overrides)


#: §8's baseline: 350 ns comparisons, 1000 chips → "about 50ms".
PAPER_CONSERVATIVE = TechnologyModel()

#: §8's second data point: "200ns/comparison, and 3000 chips ... about 10ms".
PAPER_AGGRESSIVE = TechnologyModel(comparison_time_ns=200.0, chips=3000)
