"""§8's performance predictions, reproduced as executable arithmetic.

The paper's evaluation (experiment E8) assumes a "typical relation":
1500-bit tuples (~200 characters) and 10⁴ tuples per relation.
Intersection then needs ``1500 × (10⁴)² = 1.5 × 10¹¹`` bit comparisons;
at 350 ns per comparison across 10⁶ parallel comparators that is
52.5 ms — "about 50ms" — and at 200 ns across 3 × 10⁶ comparators,
exactly 10 ms.

These functions compute the same quantities from a
:class:`~repro.perf.technology.TechnologyModel`, so the benchmark can
print paper-value vs model-value side by side and the tests can pin
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.perf.technology import (
    PAPER_AGGRESSIVE,
    PAPER_CONSERVATIVE,
    TechnologyModel,
)

__all__ = [
    "RelationProfile",
    "PAPER_WORKLOAD",
    "intersection_bit_comparisons",
    "intersection_time_seconds",
    "paper_conservative_prediction",
    "paper_aggressive_prediction",
]


@dataclass(frozen=True)
class RelationProfile:
    """The §8 "typical relation": tuple width in bits and cardinality."""

    tuple_bits: int = 1500
    cardinality: int = 10_000

    def __post_init__(self) -> None:
        if self.tuple_bits < 1 or self.cardinality < 0:
            raise ReproError(f"invalid relation profile: {self}")

    @property
    def tuple_bytes(self) -> float:
        """Tuple size in bytes ("about 200 characters" for 1500 bits)."""
        return self.tuple_bits / 8

    @property
    def total_bytes(self) -> float:
        """Relation size in bytes."""
        return self.cardinality * self.tuple_bytes


#: The workload §8's predictions are computed for.
PAPER_WORKLOAD = RelationProfile()


def intersection_bit_comparisons(
    a: RelationProfile, b: RelationProfile | None = None
) -> int:
    """Bit comparisons for a full pairwise intersection of A with B.

    "We need 1500 bit-comparisons for each of the (10⁴)² tuple
    comparisons" → 1.5 × 10¹¹ for the paper workload.
    """
    other = a if b is None else b
    if a.tuple_bits != other.tuple_bits:
        raise ReproError(
            f"union-compatible relations share a tuple width: "
            f"{a.tuple_bits} vs {other.tuple_bits}"
        )
    return a.tuple_bits * a.cardinality * other.cardinality


def intersection_time_seconds(
    technology: TechnologyModel,
    a: RelationProfile = PAPER_WORKLOAD,
    b: RelationProfile | None = None,
) -> float:
    """Seconds to intersect A and B at the model's full parallelism."""
    return technology.time_for_bit_comparisons(
        intersection_bit_comparisons(a, b)
    )


def paper_conservative_prediction() -> float:
    """§8's headline: ~50 ms (strict arithmetic gives 52.5 ms)."""
    return intersection_time_seconds(PAPER_CONSERVATIVE)


def paper_aggressive_prediction() -> float:
    """§8's second figure: "about 10ms" with 200 ns and 3000 chips."""
    return intersection_time_seconds(PAPER_AGGRESSIVE)
