"""Chip floorplanning: area vs pin limits (§8).

§8's feasibility argument has two halves.  Area: ~1000 bit-comparators
fit on a 6000µ×6000µ chip.  Pins: "we can assume that none of the
comparators on a chip incurs delay due to pin limitations; since the
time for a comparison is large relative to off-chip transfer time
(<30ns), we can multiplex about 10 bits on a pin during a single
comparison."

This module makes both constraints explicit.  A word-level array of
``rows × cols`` processors is partitioned row-wise across chips.  Each
chip must fit its share of bit-comparators (area) *and* stream its
per-pulse boundary traffic through the package (pins): vertical word
streams cross the top and bottom edges of every chip slice, horizontal
result bits cross left and right.  The planner reports how many chips
the array needs and which constraint binds — the trade §8 gestures at
when it multiplexes pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CapacityError, ReproError
from repro.perf.technology import TechnologyModel

__all__ = ["ChipPackage", "ArrayFloorplan", "plan_array", "plan_system"]


@dataclass(frozen=True)
class ChipPackage:
    """One chip's physical budget: comparator area and package pins."""

    technology: TechnologyModel
    pins: int = 120  # a large 1980 package
    power_ground_pins: int = 8

    def __post_init__(self) -> None:
        if self.pins <= self.power_ground_pins:
            raise ReproError(
                f"package must have signal pins: {self.pins} total, "
                f"{self.power_ground_pins} power/ground"
            )

    @property
    def signal_pins(self) -> int:
        """Pins available for data after power and ground."""
        return self.pins - self.power_ground_pins

    @property
    def comparators(self) -> int:
        """Bit-comparators fitting on one chip (§8: about 1000)."""
        return self.technology.comparators_per_chip

    @property
    def bits_per_pin(self) -> int:
        """§8's multiplexing factor (about 10)."""
        return max(1, self.technology.bits_per_pin_multiplex)

    @property
    def boundary_bits_per_pulse(self) -> int:
        """Bits the package can move per comparison window."""
        return self.signal_pins * self.bits_per_pin


@dataclass(frozen=True)
class ArrayFloorplan:
    """How one operator array maps onto chips."""

    rows: int
    cols: int
    element_bits: int
    chips: int
    rows_per_chip: int
    area_limited: bool
    pin_limited: bool

    @property
    def bit_comparators(self) -> int:
        """Total §8 area units for the array."""
        return self.rows * self.cols * self.element_bits

    def __repr__(self) -> str:
        binding = (
            "area" if self.area_limited else
            "pins" if self.pin_limited else "one chip"
        )
        return (
            f"ArrayFloorplan({self.rows}×{self.cols} @ {self.element_bits}b "
            f"-> {self.chips} chips, {binding}-limited)"
        )


def _slice_boundary_bits(rows_slice: int, cols: int, element_bits: int) -> int:
    """Per-pulse boundary traffic of a chip holding ``rows_slice`` rows.

    Vertical: the A and B word streams enter/leave through top and
    bottom (2 edges × cols words).  Horizontal: one result bit per row
    on each of the left and right edges.
    """
    vertical = 2 * cols * element_bits
    horizontal = 2 * rows_slice
    return vertical + horizontal


def plan_array(
    rows: int,
    cols: int,
    package: ChipPackage,
    element_bits: int = 32,
) -> ArrayFloorplan:
    """Partition a ``rows × cols`` word array across chips, row-wise."""
    if rows < 1 or cols < 1 or element_bits < 1:
        raise ReproError(
            f"array geometry must be positive: {rows}×{cols} @ {element_bits}b"
        )
    # Area bound: rows per chip from the comparator budget.
    row_area_bits = cols * element_bits
    rows_by_area = package.comparators // row_area_bits
    if rows_by_area < 1:
        raise CapacityError(
            f"one array row needs {row_area_bits} bit-comparators but a "
            f"chip holds only {package.comparators}; narrow the array or "
            f"grow the chip"
        )
    # Pin bound: largest slice whose boundary traffic fits the package.
    budget = package.boundary_bits_per_pulse
    fixed = 2 * cols * element_bits
    if fixed > budget:
        raise CapacityError(
            f"the vertical streams alone need {fixed} boundary bits/pulse "
            f"but the package moves only {budget}; more multiplexing or "
            f"fewer columns per chip required"
        )
    rows_by_pins = (budget - fixed) // 2
    if rows_by_pins < 1:
        raise CapacityError(
            f"no pin budget left for result bits after the vertical "
            f"streams ({fixed} of {budget} bits/pulse)"
        )
    rows_per_chip = min(rows_by_area, rows_by_pins, rows)
    chips = math.ceil(rows / rows_per_chip)
    return ArrayFloorplan(
        rows=rows,
        cols=cols,
        element_bits=element_bits,
        chips=chips,
        rows_per_chip=rows_per_chip,
        area_limited=chips > 1 and rows_by_area <= rows_by_pins,
        pin_limited=chips > 1 and rows_by_pins < rows_by_area,
    )


def plan_system(
    arrays: list[tuple[str, int, int]],
    package: ChipPackage,
    element_bits: int = 32,
) -> dict[str, ArrayFloorplan]:
    """Floorplan several operator arrays; returns name → plan.

    The §9 machine hosts one array per operator box (intersect, join,
    divide...); this sizes the whole device complement.
    """
    plans: dict[str, ArrayFloorplan] = {}
    for name, rows, cols in arrays:
        if name in plans:
            raise ReproError(f"duplicate array name {name!r}")
        plans[name] = plan_array(rows, cols, package, element_bits)
    return plans
