"""Span and metric exporters: JSON lines, Chrome trace events, summaries.

Three pluggable views over one recorded :class:`~repro.obs.spans.Tracer`:

* :func:`write_jsonl` / :func:`read_jsonl` — one JSON object per span
  (id/parent links preserve the logical tree), plus one object per
  recorded metric; round-trips losslessly.
* :func:`write_chrome_trace` / :func:`read_chrome_trace` — the Chrome
  trace-event format (``chrome://tracing`` / https://ui.perfetto.dev):
  every span becomes a complete ``"ph": "X"`` event on its recording
  thread's lane, so host-parallel compute shows up as genuinely
  overlapping bars.
* :func:`summarize_spans` / :func:`summarize_file` — the human rollup
  (count, total host ms, share per span name) the CLI prints for
  ``--profile`` and ``repro trace summarize``.

Timestamps are normalized so the earliest span starts at 0 µs.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable, Union

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, Tracer

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "write_chrome_trace",
    "read_chrome_trace",
    "summarize_spans",
    "summarize_file",
]

PathOrFile = Union[str, os.PathLike, IO[str]]


def _roots(source: Union[Tracer, Iterable[Span]]) -> list[Span]:
    if isinstance(source, Tracer):
        return list(source.roots)
    return list(source)


def _base_time(roots: list[Span]) -> float:
    return min((sp.t0 for root in roots for sp in root.walk()), default=0.0)


def _open(path_or_file: PathOrFile, write: bool):
    if isinstance(path_or_file, (str, os.PathLike)):
        return open(path_or_file, "w" if write else "r"), True
    return path_or_file, False


# -- JSON lines --------------------------------------------------------------


def write_jsonl(
    source: Union[Tracer, Iterable[Span]],
    path_or_file: PathOrFile,
    metrics: MetricsRegistry | None = None,
) -> int:
    """One JSON object per span (and per metric); returns lines written.

    Span objects carry ``{"span", "id", "parent", "t0_us", "dur_us",
    "tid", "args"}``; ids are depth-first preorder, so the tree
    reconstructs exactly.  Metric objects carry ``{"metric", "kind",
    ...values}``.
    """
    roots = _roots(source)
    base = _base_time(roots)
    stream, close = _open(path_or_file, write=True)
    lines = 0
    try:
        next_id = 0

        def emit(span: Span, parent: int | None) -> None:
            nonlocal next_id, lines
            span_id = next_id
            next_id += 1
            stream.write(json.dumps({
                "span": span.name,
                "id": span_id,
                "parent": parent,
                "t0_us": (span.t0 - base) * 1e6,
                "dur_us": span.seconds * 1e6,
                "tid": span.tid,
                "args": span.attrs,
            }, sort_keys=True) + "\n")
            lines += 1
            for child in span.children:
                emit(child, span_id)

        for root in roots:
            emit(root, None)
        if metrics is not None:
            for name, entry in metrics.snapshot().items():
                stream.write(
                    json.dumps({"metric": name, **entry}, sort_keys=True)
                    + "\n"
                )
                lines += 1
    finally:
        if close:
            stream.close()
    return lines


def read_jsonl(path_or_file: PathOrFile) -> tuple[list[Span], list[dict]]:
    """Rebuild ``(root_spans, metric_dicts)`` from a JSON-lines export."""
    stream, close = _open(path_or_file, write=False)
    try:
        spans: dict[int, Span] = {}
        roots: list[Span] = []
        metric_lines: list[dict] = []
        for line in stream:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "metric" in obj:
                metric_lines.append(obj)
                continue
            span = Span(
                name=obj["span"],
                attrs=dict(obj.get("args", {})),
                t0=obj["t0_us"] / 1e6,
                t1=(obj["t0_us"] + obj["dur_us"]) / 1e6,
                tid=obj.get("tid", 0),
            )
            spans[obj["id"]] = span
            parent = obj.get("parent")
            if parent is None:
                roots.append(span)
            else:
                spans[parent].children.append(span)
        return roots, metric_lines
    finally:
        if close:
            stream.close()


# -- Chrome trace events -----------------------------------------------------


def write_chrome_trace(
    source: Union[Tracer, Iterable[Span]],
    path_or_file: PathOrFile,
    metrics: MetricsRegistry | None = None,
) -> int:
    """Write a ``chrome://tracing`` / Perfetto trace; returns the event
    count.  Each span is a complete event on its thread's lane; thread
    ids are renumbered densely (0 = the lane that recorded first) and
    named via ``thread_name`` metadata.  Metrics, if given, ride along
    as one ``repro.metrics`` metadata event.
    """
    roots = _roots(source)
    base = _base_time(roots)
    tids: dict[int, int] = {}
    events: list[dict] = []
    for root in roots:
        for span in root.walk():
            tid = tids.setdefault(span.tid, len(tids))
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": (span.t0 - base) * 1e6,
                "dur": span.seconds * 1e6,
                "pid": 0,
                "tid": tid,
                "args": span.attrs,
            })
    for raw, tid in tids.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": "host-main" if tid == 0 else f"host-{tid}"},
        })
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        document["otherData"] = {"repro.metrics": metrics.snapshot()}
    stream, close = _open(path_or_file, write=True)
    try:
        json.dump(document, stream)
    finally:
        if close:
            stream.close()
    return len(events)


def read_chrome_trace(path_or_file: PathOrFile) -> list[dict]:
    """The ``"ph": "X"`` span events of a trace file, in file order."""
    stream, close = _open(path_or_file, write=False)
    try:
        document = json.load(stream)
    finally:
        if close:
            stream.close()
    if isinstance(document, list):  # the bare-array variant is also legal
        events = document
    else:
        events = document.get("traceEvents", [])
    return [ev for ev in events if ev.get("ph") == "X"]


# -- summaries ---------------------------------------------------------------


def summarize_spans(
    source: Union[Tracer, Iterable[Span]],
    top: int | None = None,
) -> str:
    """Aggregate spans by name into a host wall-clock table.

    ``share`` is each name's total against the union of root spans (so
    nested spans can sum past 100% — they overlap their parents).
    """
    roots = _roots(source)
    if not roots:
        return "(no spans recorded)"
    totals: dict[str, tuple[int, float]] = {}
    order: list[str] = []
    for root in roots:
        for span in root.walk():
            count, seconds = totals.get(span.name, (0, 0.0))
            if span.name not in totals:
                order.append(span.name)
            totals[span.name] = (count + 1, seconds + span.seconds)
    wall = sum(root.seconds for root in roots)
    names = sorted(order, key=lambda n: -totals[n][1])
    if top is not None:
        names = names[:top]
    width = max(len(name) for name in names)
    lines = [f"{'span':<{width}}  {'count':>6}  {'total':>11}  share"]
    for name in names:
        count, seconds = totals[name]
        share = (seconds / wall * 100.0) if wall > 0 else 0.0
        lines.append(
            f"{name:<{width}}  {count:>6}  {seconds * 1e3:>9.3f}ms  "
            f"{share:5.1f}%"
        )
    lines.append(f"{'wall':<{width}}  {'':>6}  {wall * 1e3:>9.3f}ms")
    return "\n".join(lines)


def summarize_file(path: str, top: int | None = None) -> str:
    """Summarize a trace file written by either exporter.

    Sniffs the format: JSON lines (one object per line) or a Chrome
    trace-event document.  Metric lines/metadata, when present, are
    appended as a second table.
    """
    with open(path) as stream:
        head = stream.read(1)
        stream.seek(0)
        if head == "{" or head == "[":
            try:
                document = json.load(stream)
            except json.JSONDecodeError:
                document = None
            if document is not None:
                return _summarize_chrome(document, top)
        stream.seek(0)
        roots, metric_lines = read_jsonl(stream)
    out = summarize_spans(roots, top)
    if metric_lines:
        out += "\n\nmetrics:\n" + "\n".join(
            f"  {m['metric']}: " + ", ".join(
                f"{k}={v}" for k, v in sorted(m.items())
                if k not in ("metric",)
            )
            for m in metric_lines
        )
    return out


def _summarize_chrome(document, top: int | None) -> str:
    if isinstance(document, list):
        events, other = document, {}
    elif isinstance(document, dict):
        events = document.get("traceEvents", [])
        other = document.get("otherData", {})
    else:
        raise ReproError("not a Chrome trace-event document")
    spans = [
        Span(
            name=ev.get("name", "?"),
            attrs=dict(ev.get("args", {})),
            t0=ev.get("ts", 0.0) / 1e6,
            t1=(ev.get("ts", 0.0) + ev.get("dur", 0.0)) / 1e6,
            tid=ev.get("tid", 0),
        )
        for ev in events
        if ev.get("ph") == "X"
    ]
    if not spans:
        return "(no spans recorded)"
    # Flat events: recover the root set as the spans contained by no
    # other span on their thread, then nest by containment per thread.
    spans.sort(key=lambda sp: (sp.tid, sp.t0, -sp.t1))
    roots: list[Span] = []
    stack: list[Span] = []
    current_tid: int | None = None
    for span in spans:
        if span.tid != current_tid:
            current_tid = span.tid
            stack = []
        while stack and span.t0 >= stack[-1].t1 - 1e-12:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            roots.append(span)
        stack.append(span)
    out = summarize_spans(roots, top)
    snapshot = other.get("repro.metrics") if isinstance(other, dict) else None
    if snapshot:
        out += "\n\nmetrics:\n" + "\n".join(
            f"  {name}: " + ", ".join(
                f"{k}={v}" for k, v in sorted(entry.items())
            )
            for name, entry in sorted(snapshot.items())
        )
    return out
