"""A process-local metrics registry: counters, gauges, histograms.

One module-level :data:`metrics` registry is shared by every
instrumented layer.  It is **disabled by default** — a disabled
``inc``/``observe``/``set_gauge`` returns after one attribute check, so
hot paths pay (almost) nothing when nobody is measuring.

When enabled, every recorded name is validated against the declared
table in :mod:`repro.obs.names`: recording an undeclared name raises —
the registry is a *stable contract*, cross-checked against
``docs/OBSERVABILITY.md`` by ``tools/check_docs.py`` and exercised
end-to-end by ``tests/obs/test_metrics_names.py``.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import ReproError
from repro.obs.names import COUNTER, GAUGE, HISTOGRAM, METRICS

__all__ = ["HistogramSummary", "MetricsRegistry", "metrics"]


class HistogramSummary:
    """Streaming summary of observed values (no buckets kept)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        return f"HistogramSummary(count={self.count}, total={self.total})"


class MetricsRegistry:
    """Counters, gauges, and histogram summaries behind one switch."""

    def __init__(self, declared: Optional[dict] = None) -> None:
        self.declared = declared if declared is not None else METRICS
        self.enabled = False
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramSummary] = {}

    # -- control -----------------------------------------------------------

    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded value (the switch is untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def _check(self, name: str, kind: str) -> None:
        spec = self.declared.get(name)
        if spec is None:
            raise ReproError(
                f"metric {name!r} is not declared in repro.obs.names — "
                f"add it to METRICS (and docs/OBSERVABILITY.md)"
            )
        if spec[0] != kind:
            raise ReproError(
                f"metric {name!r} is declared as a {spec[0]}, recorded "
                f"as a {kind}"
            )

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add to a counter (cumulative, monotone)."""
        if not self.enabled:
            return
        self._check(name, COUNTER)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge to its current level."""
        if not self.enabled:
            return
        self._check(name, GAUGE)
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a histogram summary."""
        if not self.enabled:
            return
        self._check(name, HISTOGRAM)
        with self._lock:
            summary = self._histograms.get(name)
            if summary is None:
                summary = self._histograms[name] = HistogramSummary()
            summary.observe(value)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[HistogramSummary]:
        return self._histograms.get(name)

    def collected_names(self) -> set[str]:
        """Every name that has recorded at least one value."""
        with self._lock:
            return (
                set(self._counters) | set(self._gauges)
                | set(self._histograms)
            )

    def snapshot(self) -> dict[str, dict]:
        """``{name: {"kind": ..., "value"/"summary": ...}}``, sorted."""
        with self._lock:
            out: dict[str, dict] = {}
            for name, value in self._counters.items():
                out[name] = {"kind": COUNTER, "value": value}
            for name, value in self._gauges.items():
                out[name] = {"kind": GAUGE, "value": value}
            for name, summary in self._histograms.items():
                out[name] = {"kind": HISTOGRAM, **summary.as_dict()}
            return dict(sorted(out.items()))

    def render(self) -> str:
        """The human summary table (the CLI's ``--metrics`` output)."""
        snap = self.snapshot()
        if not snap:
            return "(no metrics recorded)"
        width = max(len(name) for name in snap)
        lines = [f"{'metric':<{width}}  {'kind':<9}  value"]
        for name, entry in snap.items():
            if entry["kind"] == HISTOGRAM:
                value = (
                    f"count={entry['count']} total={entry['total']:g} "
                    f"min={entry['min']:g} max={entry['max']:g}"
                )
            else:
                value = f"{entry['value']:g}"
            lines.append(f"{name:<{width}}  {entry['kind']:<9}  {value}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, {len(self.collected_names())} names)"


#: The process-local registry every instrumented layer records into.
metrics = MetricsRegistry()
