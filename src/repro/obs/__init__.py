"""``repro.obs`` — the zero-dependency observability layer.

One subsystem, three surfaces, all off by default:

* **Spans** (:mod:`repro.obs.spans`): hierarchical host wall-clock
  intervals — ``with obs.span("compile", ops=6): ...`` — recorded by an
  ambient :class:`Tracer`.  Instrumentation points are free while
  tracing is off (the null tracer hands out one shared no-op context
  manager).  The machine records compute-phase work as *detached*
  subtrees and grafts them in during sequential replay, so the span
  tree is deterministic under ``parallel=True`` and ``parallel=False``
  alike.
* **Metrics** (:mod:`repro.obs.metrics`): a process-local registry of
  counters/gauges/histograms whose names are declared once in
  :mod:`repro.obs.names` — the stable, docs-checked contract.
* **Exporters** (:mod:`repro.obs.export`): JSON lines, Chrome
  trace-event files (``chrome://tracing`` / Perfetto), and human
  summary tables.

CLI: ``--trace FILE`` / ``--metrics`` on ``query``/``machine``,
``repro trace summarize FILE``; ``--profile`` is a view over the same
spans.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    read_chrome_trace,
    read_jsonl,
    summarize_file,
    summarize_spans,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import HistogramSummary, MetricsRegistry, metrics
from repro.obs.names import COUNTER, GAUGE, HISTOGRAM, METRICS
from repro.obs.spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    adopt,
    detached,
    enabled,
    get_tracer,
    span,
    start,
    stop,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span",
    "detached",
    "adopt",
    "enabled",
    "get_tracer",
    "start",
    "stop",
    "tracing",
    "metrics",
    "MetricsRegistry",
    "HistogramSummary",
    "METRICS",
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "write_jsonl",
    "read_jsonl",
    "write_chrome_trace",
    "read_chrome_trace",
    "summarize_spans",
    "summarize_file",
]
