"""The stable metric-name registry.

Every metric the instrumented code records is declared here, once, with
its kind and a one-line meaning.  The table is a *contract*:

* :mod:`repro.obs.metrics` refuses to record a name that is not
  declared (so an instrumentation typo fails loudly, not silently);
* ``tests/obs/test_metrics_names.py`` exercises a workload that must
  touch **every** declared name, so a declared-but-dead name fails CI;
* ``tools/check_docs.py`` cross-checks this table against the metric
  table in ``docs/OBSERVABILITY.md`` — renaming a metric without
  updating the docs (or vice versa) fails CI.

Naming convention: ``layer.subject.event`` with layers ``lang``,
``machine``, ``device``, ``engine``, ``service``, ``shard``,
``store``, and ``faults`` (lowest to highest frequency; ``service`` is
the multi-tenant engine-pool/serving layer, ``shard`` the
cross-machine partitioned-execution layer, ``store`` the out-of-core
columnar relation store, ``faults`` the fault-injection/recovery layer
that cuts across all of them).
"""

from __future__ import annotations

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: name -> (kind, description).  Keep sorted by name.
METRICS: dict[str, tuple[str, str]] = {
    "device.block_runs": (
        COUNTER, "§8 sub-problems executed across all devices"),
    "device.busy_pulses": (
        COUNTER, "total simulated pulses run on systolic devices"),
    "device.executions": (
        COUNTER, "operations executed on machine devices (incl. the CPU)"),
    "engine.bitplane_planes": (
        COUNTER, "packed uint64 bitplanes swept by the bitplane engine"),
    "engine.lattice.chunks": (
        COUNTER, "row chunks evaluated by the lattice engine's grid path"),
    "engine.run.pulses": (
        HISTOGRAM, "pulses per engine run (every engine alike)"),
    "engine.runs": (
        COUNTER, "array plans executed by any engine"),
    "faults.backoff_seconds": (
        HISTOGRAM, "host seconds slept backing off before each retry"),
    "faults.deadline_cancels": (
        COUNTER, "queries cancelled at their deadline by the engine pool"),
    "faults.exchange_resends": (
        COUNTER, "dropped interconnect exchanges re-sent by the shard layer"),
    "faults.injected": (
        COUNTER, "faults injected by the active FaultPlan (all kinds)"),
    "faults.quarantines": (
        COUNTER, "devices quarantined after exhausting their retry budget"),
    "faults.redispatches": (
        COUNTER, "ops whose device assignment changed in a recovery replan"),
    "faults.replans": (
        COUNTER, "queries re-planned against a reduced healthy roster"),
    "faults.retries": (
        COUNTER, "recovery retries across device, disk, shard, and service "
                 "layers"),
    "lang.optimize.calls": (
        COUNTER, "logical-plan optimizer invocations"),
    "lang.parse.calls": (
        COUNTER, "expression-language parses"),
    "machine.chains.executed": (
        COUNTER, "§9 pipelined chains executed fused (not fallen back)"),
    "machine.compile.calls": (
        COUNTER, "SystolicDatabaseMachine.compile invocations"),
    "machine.disk.reads": (
        COUNTER, "base-relation reads off the machine disk"),
    "machine.host.tasks": (
        COUNTER, "compute-phase thunks resolved by HostExecutor"),
    "machine.op.sim_seconds": (
        HISTOGRAM, "simulated duration of each replayed timeline step"),
    "machine.ops.executed": (
        COUNTER, "physical ops replayed onto the timeline"),
    "machine.plan_cache.hits": (
        COUNTER, "compile calls answered from the LRU plan cache"),
    "machine.plan_cache.misses": (
        COUNTER, "compile calls that ran the physical planner"),
    "machine.plan_cache.size": (
        GAUGE, "physical plans currently held by the LRU cache"),
    "service.admissions": (
        COUNTER, "queries admitted past the engine pool's concurrency gate"),
    "service.queries": (
        COUNTER, "queries executed by the engine pool (all tenants)"),
    "service.query.seconds": (
        HISTOGRAM, "host wall-clock seconds per pooled query"),
    "service.queue.depth": (
        GAUGE, "queries currently waiting at the admission gate"),
    "service.rejections": (
        COUNTER, "queries refused with AdmissionError under backpressure"),
    "service.tenant.queries": (
        COUNTER, "pooled queries summed over tenants (per-tenant split in "
                 "EnginePool.tenant_stats)"),
    "shard.broadcasts": (
        COUNTER, "relations replicated onto every shard by an exchange step"),
    "shard.local_joins": (
        COUNTER, "equi-joins run shard-local on co-partitioned inputs "
                 "(zero cross-shard traffic)"),
    "shard.merge_seconds": (
        HISTOGRAM, "host wall-clock seconds merging per-shard results into "
                   "the final relation"),
    "shard.repartition_tuples": (
        COUNTER, "tuples that changed shard during re-partition exchanges"),
    "store.bytes_read": (
        COUNTER, "host bytes read off columnar chunk files"),
    "store.chunks_pruned": (
        COUNTER, "chunks skipped by the grid index / zone maps on a read"),
    "store.chunks_read": (
        COUNTER, "columnar chunks actually scanned by store reads"),
    "store.index_probes": (
        COUNTER, "grid-directory probes answering selection predicates"),
}

__all__ = ["COUNTER", "GAUGE", "HISTOGRAM", "METRICS"]
