"""Hierarchical spans: wall-clock intervals with attributes and children.

A :class:`Span` records one named interval of *host* time (simulated
pulse-clock quantities belong in its ``attrs``).  A :class:`Tracer`
holds the forest of spans for one observed run and hands out context
managers::

    with obs.span("compile", ops=6) as sp:
        ...
        sp.set(cached=True)

Tracing is **off by default**: the module-level active tracer starts as
:data:`NULL_TRACER`, whose ``span()`` returns one shared no-op context
manager — an instrumentation point costs two attribute lookups and a
``with`` block, nothing else.  ``obs.start()`` installs a real tracer.

Thread model.  Each thread keeps its own span stack, so spans nested on
one thread nest in the recorded tree.  Work that happens on host worker
threads (the machine's compute phase) is recorded as **detached**
subtrees — :meth:`Tracer.detached` hides the caller's stack, records a
free-standing subtree, and the replay phase later grafts it into the
deterministic tree with :meth:`Tracer.adopt`.  The resulting tree
*structure* is therefore identical between parallel and serial runs;
only timestamps (and thread ids) differ.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "enabled",
    "start",
    "stop",
    "tracing",
    "span",
    "detached",
    "adopt",
]


@dataclass
class Span:
    """One named wall-clock interval with attributes and child spans."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    t0: float = 0.0
    t1: float = 0.0
    tid: int = 0
    children: list["Span"] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        """Host wall-clock duration."""
        return self.t1 - self.t0

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def structure(self) -> tuple:
        """The deterministic projection: names, attrs, nesting — no
        timestamps, no thread ids.  Equal between parallel and serial
        runs of the same work (the tests' determinism contract)."""
        return (
            self.name,
            tuple(sorted(self.attrs.items())),
            tuple(child.structure() for child in self.children),
        )

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.seconds * 1e3:.3f} ms, "
            f"{len(self.children)} children)"
        )


class _NullSpan:
    """The shared do-nothing span the null tracer yields."""

    __slots__ = ()

    name = ""
    attrs: dict[str, Any] = {}
    children: list = []
    t0 = t1 = 0.0
    seconds = 0.0

    def set(self, **attrs: Any) -> None:
        pass


class _NullContext:
    """A reusable no-op context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The off-switch: every operation is a shared no-op."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullContext:
        return _NULL_CONTEXT

    def detached(self, name: str, **attrs: Any) -> _NullContext:
        return _NULL_CONTEXT

    def adopt(self, span: Any) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()


class Tracer:
    """Records a forest of spans with per-thread nesting."""

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any):
        """Open a child of the current thread's innermost span (a new
        root when the thread has none)."""
        stack = self._stack()
        sp = Span(name=name, attrs=attrs, tid=threading.get_ident())
        if stack:
            stack[-1].children.append(sp)
        else:
            with self._lock:
                self.roots.append(sp)
        stack.append(sp)
        sp.t0 = time.perf_counter()
        try:
            yield sp
        finally:
            sp.t1 = time.perf_counter()
            stack.pop()

    @contextlib.contextmanager
    def detached(self, name: str, **attrs: Any):
        """Record a free-standing subtree, attached nowhere.

        The caller's current stack is hidden for the duration, so spans
        opened inside nest under the detached root even on the main
        thread.  Graft the yielded span into the tree later with
        :meth:`adopt` — the machine does this during sequential replay
        so the tree is deterministic however the compute phase ran.
        """
        stack = self._stack()
        saved = stack[:]
        del stack[:]
        sp = Span(name=name, attrs=attrs, tid=threading.get_ident())
        stack.append(sp)
        sp.t0 = time.perf_counter()
        try:
            yield sp
        finally:
            sp.t1 = time.perf_counter()
            stack[:] = saved

    def adopt(self, span: Span) -> None:
        """Graft a detached span under the current thread's open span
        (or as a root)."""
        if span is _NULL_SPAN or not isinstance(span, Span):
            return
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # -- reading -----------------------------------------------------------

    def walk(self) -> Iterator[Span]:
        """Every recorded span, roots first, depth-first."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """All recorded spans with the given name."""
        return [sp for sp in self.walk() if sp.name == name]

    def __repr__(self) -> str:
        return f"Tracer({len(self.roots)} roots)"


# -- the ambient tracer ------------------------------------------------------

_active: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The active tracer (the shared :data:`NULL_TRACER` when off)."""
    return _active


def enabled() -> bool:
    """True when a real tracer is collecting spans."""
    return _active.enabled


def start(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the active tracer.  Idempotent when one is
    already active and no explicit tracer is given."""
    global _active
    if tracer is not None:
        _active = tracer
    elif not _active.enabled:
        _active = Tracer()
    return _active  # type: ignore[return-value]


def stop() -> Tracer | NullTracer:
    """Deactivate tracing; returns the tracer that was collecting."""
    global _active
    previous = _active
    _active = NULL_TRACER
    return previous


@contextlib.contextmanager
def tracing(tracer: Optional[Tracer] = None):
    """Scope-bound tracing: activate for a block, restore after::

        with obs.tracing() as tracer:
            machine.run(plan)
        export.write_chrome_trace(tracer, "out.json")
    """
    global _active
    previous = _active
    _active = tracer if tracer is not None else Tracer()
    try:
        yield _active
    finally:
        _active = previous


def span(name: str, **attrs: Any):
    """``with obs.span("compile", ops=6) as sp: ...`` on the active
    tracer (free when tracing is off)."""
    return _active.span(name, **attrs)


def detached(name: str, **attrs: Any):
    """A detached subtree on the active tracer (see
    :meth:`Tracer.detached`)."""
    return _active.detached(name, **attrs)


def adopt(span: Any) -> None:
    """Graft a detached span on the active tracer."""
    _active.adopt(span)
