"""Exception hierarchy shared across the repro packages.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems refine it:
relational-model violations, systolic-simulation faults, and machine-level
resource errors each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DomainError(ReproError):
    """A value does not belong to (or cannot be encoded in) a domain."""


class SchemaError(ReproError):
    """A schema is malformed or an operation referenced a bad column."""


class UnionCompatibilityError(SchemaError):
    """Two relations fail the union-compatibility test of paper §2.4.

    Union-compatibility requires the same number of columns and
    corresponding columns drawn from the same underlying domain.
    """


class RelationError(ReproError):
    """A relation or multi-relation was constructed or used incorrectly."""


class SimulationError(ReproError):
    """The systolic simulator detected an inconsistency.

    Raised for wiring mistakes (unconnected ports, double drivers),
    protocol violations inside cells, and collector/schedule mismatches.
    """


class WiringError(SimulationError):
    """A cell network was mis-wired (dangling port, duplicate driver...)."""


class CapacityError(ReproError):
    """A physical resource (array, memory, crossbar port) was exceeded."""


class PlanError(ReproError):
    """A query plan is malformed or cannot be scheduled."""


class ConfigError(ReproError):
    """A configuration value (environment variable, knob) is malformed."""


class AdmissionError(ReproError):
    """The engine pool refused a query under backpressure.

    Raised when a query waits longer than its admission timeout for one
    of the pool's concurrency slots — the serving layer's signal to shed
    load instead of queueing without bound.
    """


class ParseError(ReproError):
    """The relational-algebra expression language failed to parse."""
