"""Exception hierarchy shared across the repro packages.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems refine it:
relational-model violations, systolic-simulation faults, and machine-level
resource errors each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DomainError(ReproError):
    """A value does not belong to (or cannot be encoded in) a domain."""


class SchemaError(ReproError):
    """A schema is malformed or an operation referenced a bad column."""


class UnionCompatibilityError(SchemaError):
    """Two relations fail the union-compatibility test of paper §2.4.

    Union-compatibility requires the same number of columns and
    corresponding columns drawn from the same underlying domain.
    """


class RelationError(ReproError):
    """A relation or multi-relation was constructed or used incorrectly."""


class SimulationError(ReproError):
    """The systolic simulator detected an inconsistency.

    Raised for wiring mistakes (unconnected ports, double drivers),
    protocol violations inside cells, and collector/schedule mismatches.
    """


class WiringError(SimulationError):
    """A cell network was mis-wired (dangling port, duplicate driver...)."""


class CapacityError(ReproError):
    """A physical resource (array, memory, crossbar port) was exceeded."""


class PlanError(ReproError):
    """A query plan is malformed or cannot be scheduled."""


class ConfigError(ReproError):
    """A configuration value (environment variable, knob) is malformed."""


class StoreError(ReproError):
    """The persistent relation store hit bad data or a bad request.

    Raised for malformed relation names, values outside the store's
    64-bit on-disk element width, non-serialisable domains, and corrupt
    or missing manifests.  Timing-model misuse stays :class:`PlanError`;
    this branch is about the bytes on the host filesystem.
    """


class AdmissionError(ReproError):
    """The engine pool refused a query under backpressure.

    Raised when a query waits longer than its admission timeout for one
    of the pool's concurrency slots — the serving layer's signal to shed
    load instead of queueing without bound.  Retryable: the refusal is a
    property of the instant, not of the query.
    """


class ParseError(ReproError):
    """The relational-algebra expression language failed to parse."""


class FaultError(ReproError):
    """A (possibly injected) hardware or interconnect fault.

    The paper's machine is built from many identical VLSI cells and
    arrays, so defective cells and dead devices are the *expected*
    failure mode.  :mod:`repro.faults` injects them deterministically;
    the recovery layer retries, re-dispatches, and replans.  A
    ``FaultError`` escaping to the caller means recovery was exhausted.
    """


class DeviceFaultError(FaultError):
    """A systolic device failed while executing an operation.

    ``device`` names the faulty array; ``quarantined`` is True when the
    device exhausted its retry budget and has been removed from the
    healthy roster (the signal for the pool to replan the query against
    the surviving devices).
    """

    def __init__(
        self,
        message: str,
        device: str | None = None,
        quarantined: bool = False,
    ) -> None:
        super().__init__(message)
        self.device = device
        self.quarantined = quarantined


class DiskFaultError(FaultError):
    """A base-relation read failed (bad sector, dead head, ...)."""


class ShardFaultError(FaultError):
    """A shard machine crashed while running its piece of a query."""


class ExchangeFaultError(ShardFaultError):
    """A cross-shard interconnect exchange dropped its payload."""


class DeadlineError(ReproError):
    """A query exceeded its deadline and was cancelled.

    Raised by the engine pool when ``query_deadline`` (or the
    ``REPRO_QUERY_DEADLINE`` environment variable) lapses before the
    query finishes; the pool slot is freed so waiting queries proceed.
    """


class ServiceRetryableError(ReproError):
    """A transient client-side service failure (timeout, lost socket).

    The :class:`~repro.serve.client.ServiceClient` raises this after
    tearing down a connection whose request/response stream can no
    longer be trusted (a reply might otherwise be read as the answer to
    the *next* request).  Safe to retry on a fresh connection.
    """


def error_class(kind: str) -> type[ReproError]:
    """The :class:`ReproError` subclass named ``kind``.

    The serve protocol encodes a server-side error's class name in the
    response's ``kind`` field; clients re-raise the matching class so
    ``AdmissionError``/``PlanError``/``SchemaError``/... survive the
    wire.  Unknown or non-error names fall back to :class:`ReproError`.
    """
    candidate = globals().get(kind)
    if (
        isinstance(candidate, type)
        and issubclass(candidate, ReproError)
    ):
        return candidate
    return ReproError
